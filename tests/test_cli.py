"""The command-line interface."""

import json
import os

import pytest

from repro.analysis import tables
from repro.analysis.reporting import format_table
from repro.cli import build_parser, main


class TestInfo:
    def test_prints_model_parameters(self, capsys):
        assert main(["info", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "n=64" in out
        assert "capacity" in out

    def test_default_n(self, capsys):
        assert main(["info"]) == 0


class TestRun:
    def test_mis(self, capsys):
        assert main(["run", "mis", "--n", "24", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "MIS" in out and "rounds" in out

    def test_matching_alias(self, capsys):
        assert main(["run", "matching", "--n", "20", "--seed", "1"]) == 0
        assert "MM" in capsys.readouterr().out

    def test_bfs_grid_family(self, capsys):
        assert main(["run", "bfs", "--n", "25", "--family", "grid"]) == 0

    def test_unknown_algorithm(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_non_runnable_subroutine_is_clean_error(self, capsys):
        # `findmin` resolves in the registry but is a subroutine entry; the
        # CLI must refuse cleanly (exit 2), not surface a traceback.
        assert main(["run", "findmin"]) == 2
        err = capsys.readouterr().err
        assert "not independently runnable" in err and "pick one of" in err

    def test_registry_algorithm_beyond_table1(self, capsys):
        # The registry makes non-Table-1 algorithms runnable by name.
        assert main(["run", "components", "--n", "16", "--seed", "1"]) == 0
        assert "components" in capsys.readouterr().out

    def test_output_is_byte_identical_to_legacy_runner(self, capsys):
        # `run` is a thin wrapper over Session; its stdout must be exactly
        # the table the legacy TABLE1_RUNNERS row produces.
        assert main(["run", "mst", "--n", "16", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        row = tables.run_mst_row(16, a=2, seed=1)
        expected = format_table(
            list(row.keys()),
            [list(row.values())],
            title=f"MST on n=16 (bound {tables.TABLE1_BOUNDS['MST']})",
        )
        assert out == expected + "\n"


class TestTable1:
    def test_selected_rows(self, capsys):
        assert main(["table1", "--rows", "MIS", "--ns", "16,24", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "T1-MIS" in out
        assert out.count("True") >= 2

    def test_unknown_row_is_error_code(self, capsys):
        assert main(["table1", "--rows", "XYZ", "--ns", "16"]) == 2


class TestArgumentErrors:
    """Malformed values are argparse errors (exit 2), not tracebacks."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1", "--ns", "64,abc"],
            ["table1", "--rows", "MIS,,MM"],
            ["separation", "--ns", "1x"],
            ["sweep", "--algos", "mst", "--ns", "abc"],
            ["sweep", "--algos", "mst", "--seeds", "x:y"],
            ["sweep", "--algos", "mst", "--seeds", "5:1"],
            ["sweep", "--algos", "mst", "--seeds", "3:3"],
            ["sweep", "--algos", " , "],
        ],
    )
    def test_malformed_values_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err


class TestEngineChoices:
    def test_choices_follow_the_engine_registry(self):
        # --engine choices are derived from config.known_engines() at parse
        # time, so engines added via register_engine become selectable.
        from repro.ncc import engine as engine_mod

        class DummyEngine(engine_mod.ReferenceEngine):
            name = "dummy-test"

        engine_mod.register_engine("dummy-test", DummyEngine)
        try:
            args = build_parser().parse_args(
                ["run", "mst", "--engine", "dummy-test"]
            )
            assert args.engine == "dummy-test"
        finally:
            engine_mod._REGISTRY.pop("dummy-test", None)
        # once unregistered, the choice disappears again
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mst", "--engine", "dummy-test"])


class TestSweep:
    def test_writes_jsonl_and_summary(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main([
            "sweep", "--algos", "mis,matching", "--ns", "16", "--seeds", "0:2",
            "--jobs", "2", "--out", str(out),
        ]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 4  # 2 algos x 1 n x 2 seeds
        records = [json.loads(line) for line in lines]
        assert all(r["correct"] for r in records)
        assert [r["spec"]["algorithm"] for r in records] == [
            "mis", "mis", "matching", "matching",
        ]
        assert "sweep: 4 runs" in capsys.readouterr().out

    def test_stdout_jsonl_summary_to_stderr(self, capsys):
        assert main([
            "sweep", "--algos", "mis", "--ns", "16", "--seeds", "0:1",
            "--out", "-",
        ]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out.strip())["spec"]["algorithm"] == "mis"
        assert "sweep: 1 runs" in captured.err

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["sweep", "--algos", "nope", "--ns", "16"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_non_runnable_algorithm_exits_2(self, capsys):
        assert main(["sweep", "--algos", "findmin", "--ns", "16"]) == 2
        assert "not independently runnable" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv,prefix",
        [
            (["run", "mst", "--n", "0"], "run:"),
            (["table1", "--rows", "MIS", "--ns", "-5"], "table1:"),
            (["sweep", "--algos", "mst", "--ns", "-5"], "sweep:"),
            (["sweep", "--algos", "mst", "--ns", "16", "--a", "0"], "sweep:"),
        ],
    )
    def test_out_of_range_values_exit_2(self, argv, prefix, capsys):
        # RunSpec range validation surfaces as a clean error, not a traceback.
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith(prefix) and "must be >=" in err

    def test_empty_grid_exits_2(self, capsys):
        # `--ns ","` parses to no sizes; a zero-run sweep must not look
        # like success to a scripted pipeline.
        assert main(["sweep", "--algos", "mis", "--ns", ","]) == 2
        assert "empty grid" in capsys.readouterr().err

    def test_unknown_engine_exits_2(self, capsys):
        assert main([
            "sweep", "--algos", "mis", "--ns", "16", "--engines", "warp",
        ]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_mixed_engines_grid(self, capsys):
        assert main([
            "sweep", "--algos", "mis", "--ns", "16",
            "--engines", "reference,batched",
        ]) == 0
        out = capsys.readouterr().out
        assert "reference" in out and "batched" in out


class TestDuplicateAxes:
    """Regression: a repeated axis value (``--ns 16,16``) used to multiply
    the grid — every duplicate row reran and re-emitted an identical JSONL
    record.  Duplicates now collapse (first occurrence wins) with a note
    on stderr."""

    def test_duplicates_collapse_with_note(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main([
            "sweep", "--algos", "mis,mis", "--ns", "16,16",
            "--seeds", "0,1,0", "--out", str(out),
        ]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2  # 1 algo x 1 n x 2 seeds
        seeds = [json.loads(line)["spec"]["seed"] for line in lines]
        assert seeds == [0, 1]
        err = capsys.readouterr().err
        assert "note: ignoring 1 duplicate algorithm value(s)" in err
        assert "note: ignoring 1 duplicate size value(s)" in err
        assert "note: ignoring 1 duplicate seed value(s)" in err

    def test_duplicate_engines_collapse(self, capsys):
        assert main([
            "sweep", "--algos", "mis", "--ns", "16",
            "--engines", "batched,reference,batched",
        ]) == 0
        captured = capsys.readouterr()
        assert "note: ignoring 1 duplicate engine value(s)" in captured.err
        assert "sweep: 2 runs" in captured.out

    def test_clean_axes_print_no_note(self, capsys):
        assert main(["sweep", "--algos", "mis", "--ns", "16,24"]) == 0
        assert "duplicate" not in capsys.readouterr().err

    def test_order_preserved(self):
        args = build_parser().parse_args(
            ["sweep", "--algos", "mst", "--ns", "64,16,64,24"]
        )
        assert args.ns == [64, 16, 24]


class TestScenarioOptions:
    def test_run_with_scenario(self, capsys):
        assert main(["run", "mis", "--n", "24", "--scenario", "pa-heavy-tail"]) == 0
        out = capsys.readouterr().out
        assert "pa-heavy-tail" in out and "rounds" in out

    def test_run_scenario_alias_resolves(self, capsys):
        assert main(["run", "mis", "--n", "16", "--scenario", "PA"]) == 0
        assert "pa-heavy-tail" in capsys.readouterr().out

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert main(["run", "mis", "--n", "16", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_incompatible_scenario_exits_2(self, capsys):
        # mst requires weights; the unweighted grid is a clean registry
        # error (exit 2), not a traceback.
        assert main(["run", "mst", "--n", "16", "--scenario", "grid"]) == 2
        err = capsys.readouterr().err
        assert "does not satisfy" in err and "grid-unique-weights" in err

    def test_family_on_algorithm_without_option_exits_2(self, capsys):
        # `--family` used to be silently dropped for every algorithm but
        # BFS; now it is a hard error pointing at --scenario.
        assert main(["run", "mst", "--n", "16", "--family", "grid"]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "--scenario" in err

    def test_family_still_works_for_bfs_with_deprecation_note(self, capsys):
        assert main(["run", "bfs", "--n", "25", "--family", "grid"]) == 0
        assert "deprecated" in capsys.readouterr().err

    def test_bfs_unknown_family_value_exits_2(self, capsys):
        # A typo like `--family grd` must not silently run forest-union.
        assert main(["run", "bfs", "--n", "20", "--family", "grd"]) == 2
        err = capsys.readouterr().err
        assert "unknown BFS family" in err and "forest | grid" in err

    def test_family_plus_scenario_exits_2(self, capsys):
        assert main([
            "run", "bfs", "--n", "25", "--family", "grid",
            "--scenario", "grid",
        ]) == 2
        assert "deprecated alias" in capsys.readouterr().err

    def test_sweep_scenarios_axis(self, tmp_path, capsys):
        out = tmp_path / "scen.jsonl"
        assert main([
            "sweep", "--algos", "mis", "--ns", "16", "--seeds", "0:2",
            "--scenarios", "grid,star", "--out", str(out),
        ]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["spec"]["scenario"] for r in records] == [
            "grid", "grid", "star", "star",
        ]
        assert "scenario" in capsys.readouterr().out

    def test_sweep_unknown_scenario_exits_2(self, capsys):
        assert main([
            "sweep", "--algos", "mis", "--ns", "16", "--scenarios", "warp",
        ]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_incompatible_pair_exits_2(self, capsys):
        assert main([
            "sweep", "--algos", "mst", "--ns", "16", "--scenarios", "grid",
        ]) == 2
        assert "does not satisfy" in capsys.readouterr().err

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "forest-union" in out and "grid-unique-weights" in out
        assert "registered scenarios" in out


class TestMatrix:
    def test_grid_table_and_jsonl(self, tmp_path, capsys):
        out = tmp_path / "matrix.jsonl"
        assert main([
            "matrix", "--algos", "mis,mst", "--scenarios",
            "grid,grid-unique-weights", "--n", "16", "--jobs", "2",
            "--out", str(out),
        ]) == 0
        captured = capsys.readouterr()
        assert "matrix: 3 runs" in captured.out
        assert "mstxgrid" in captured.out  # the skipped incompatible cell
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 3
        assert all(r["correct"] for r in records)
        assert {(r["spec"]["algorithm"], r["spec"]["scenario"]) for r in records} == {
            ("mis", "grid"), ("mis", "grid-unique-weights"),
            ("mst", "grid-unique-weights"),
        }

    def test_defaults_cover_all_runnable_algorithms(self, capsys):
        # No --algos/--scenarios = every runnable algorithm x every
        # registered scenario; just check the parse/grid wiring, not a run.
        from repro.api import matrix_grid, scenario_names
        from repro.registry import algorithm_names

        specs, skipped = matrix_grid(
            algorithm_names(runnable_only=True), scenario_names(), n=8
        )
        cells = len(specs) + len(skipped)
        assert cells == len(algorithm_names(runnable_only=True)) * len(
            scenario_names()
        )

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["matrix", "--algos", "nope", "--n", "16"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["matrix", "--scenarios", "warp", "--n", "16"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_out_of_range_n_exits_2(self, capsys):
        assert main(["matrix", "--algos", "mis", "--scenarios", "grid",
                     "--n", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("matrix:") and "must be >=" in err


class TestSeparation:
    def test_gossip_table(self, capsys):
        assert main(["separation", "--ns", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "Congested Clique" in out
        assert "NCC" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLint:
    """`repro lint` shares the CLI's exit-code contract: 0 clean, 1
    findings, 2 usage errors."""

    FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "lint_fixtures")

    def test_clean_run_exits_0(self, capsys):
        good = os.path.join(self.FIXTURES, "ncc001_good.py")
        assert main(["lint", good, "--baseline", "none"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_1(self, capsys):
        bad = os.path.join(self.FIXTURES, "ncc001_bad.py")
        assert main(["lint", bad, "--baseline", "none"]) == 1
        assert "NCC001" in capsys.readouterr().out

    def test_nonexistent_path_exits_2(self, capsys):
        assert main(["lint", "no/such/dir", "--baseline", "none"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("lint:") and "no such file" in err

    def test_unknown_rule_exits_2(self, capsys):
        good = os.path.join(self.FIXTURES, "ncc001_good.py")
        assert main(["lint", good, "--select", "NCC042",
                     "--baseline", "none"]) == 2
        assert "NCC042" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "NCC001" in out and "NCC006" in out
