"""The scenario subsystem: registry, declared guarantees, compatibility,
and the Session/schema wiring that makes scenarios a sweep axis.

The guarantee property suite certifies every registered scenario's
declarations against the Nash-Williams machinery in
:mod:`repro.graphs.arboricity`: for a declared arboricity bound ``B``,
the density lower bound (Nash-Williams with the peeling-suffix subgraph
witnesses) must stay ≤ B and the degeneracy must stay ≤ 2B − 1 — both
are theorems for any graph with a(G) ≤ B, so a lying declaration is
refuted as soon as any sampled instance has a subgraph denser than B
forests allow.
"""

import json

import pytest

from repro.api import RunSpec, Session, matrix_grid, sweep_grid
from repro.errors import ConfigurationError
from repro.graphs import arboricity, properties
from repro.registry import get_algorithm, iter_algorithms
from repro.scenarios import (
    DIAMETER_CLASSES,
    ScenarioCompatibilityError,
    ScenarioSpec,
    UnknownScenarioError,
    canonical_scenario_name,
    check_compatible,
    compatible_scenarios,
    get_scenario,
    is_compatible,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios import registry as scenario_registry

ALL_SCENARIOS = list(iter_scenarios())

#: the sampled (n, seed) grid of the guarantee suite — small enough to be
#: cheap, spread enough that diameter/arboricity lies would be caught.
SAMPLES = [(16, 0), (16, 1), (32, 0), (48, 1)]


def _pop_scenario(name: str) -> None:
    scenario_registry._SPECS.pop(name, None)
    scenario_registry._ALIASES.pop(name, None)


class TestLookup:
    def test_canonical_names(self):
        names = scenario_names()
        assert {"forest-union", "grid", "star", "pa-heavy-tail",
                "cliques-disconnected", "grid-unique-weights",
                "forest-union-random-weights"} <= set(names)

    def test_aliases_case_insensitive(self):
        assert get_scenario("PA") is get_scenario("pa-heavy-tail")
        assert get_scenario("clique") is get_scenario("complete")
        assert get_scenario("Forest") is get_scenario("forest-union")

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownScenarioError, match="unknown scenario"):
            get_scenario("nope")

    def test_weighted_variants_inherit_base_guarantees(self):
        base = get_scenario("grid")
        variant = get_scenario("grid-unique-weights")
        assert variant.base == base.name
        assert variant.weighted and not base.weighted
        assert variant.connected == base.connected
        assert variant.diameter == base.diameter
        assert variant.degrees == base.degrees

    def test_invalid_diameter_class_rejected(self):
        with pytest.raises(ConfigurationError, match="diameter class"):
            ScenarioSpec(name="bad", build=lambda n, a, s: None, diameter="huge")

    def test_invalid_degree_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="degree profile"):
            ScenarioSpec(name="bad", build=lambda n, a, s: None, degrees="odd")


class TestDeclaredGuarantees:
    """Every registered scenario's declarations hold on sampled instances."""

    @pytest.mark.parametrize(
        "spec", ALL_SCENARIOS, ids=[s.name for s in ALL_SCENARIOS]
    )
    def test_guarantees_hold(self, spec):
        a_values = (1, 3) if spec.uses_a else (2,)
        for n, seed in SAMPLES:
            for a in a_values:
                g = spec.build(n, a, seed)
                assert g.n >= 1
                # arboricity: the Nash-Williams witness cannot refute the
                # declared bound, and the degeneracy sandwich respects it.
                if spec.arboricity is not None:
                    bound = spec.arboricity(n, a)
                    lower = arboricity.density_lower_bound(g)
                    _, degeneracy = arboricity.degeneracy_order(g)
                    assert lower <= bound, (
                        f"{spec.name}(n={n}, a={a}, seed={seed}): "
                        f"Nash-Williams lower bound {lower} refutes the "
                        f"declared arboricity bound {bound}"
                    )
                    assert degeneracy <= 2 * bound - 1, (
                        f"{spec.name}(n={n}, a={a}, seed={seed}): "
                        f"degeneracy {degeneracy} > 2*{bound} - 1"
                    )
                # connectivity is asserted only when guaranteed.
                if spec.connected:
                    assert properties.is_connected(g), (
                        f"{spec.name}(n={n}, a={a}, seed={seed}) disconnected"
                    )
                # weightedness is exact in both directions.
                assert g.is_weighted() == spec.weighted
                # the diameter class holds for the largest component.
                d = properties.diameter(g)
                assert DIAMETER_CLASSES[spec.diameter](g.n, d), (
                    f"{spec.name}(n={n}, a={a}, seed={seed}): diameter {d} "
                    f"outside class {spec.diameter!r}"
                )

    @pytest.mark.parametrize(
        "spec", ALL_SCENARIOS, ids=[s.name for s in ALL_SCENARIOS]
    )
    def test_builds_are_deterministic(self, spec):
        a = 2
        first = spec.build(24, a, 3)
        again = spec.build(24, a, 3)
        assert first.edges() == again.edges()
        if spec.weighted:
            assert all(
                first.weight(u, v) == again.weight(u, v) for u, v in first.edges()
            )

    def test_uses_a_families_respond_to_a(self):
        for spec in ALL_SCENARIOS:
            if spec.uses_a:
                assert spec.build(32, 1, 0).m < spec.build(32, 3, 0).m

    def test_effective_a_labels(self):
        assert get_scenario("grid").effective_a(64, 2) == 3
        assert get_scenario("forest-union").effective_a(64, 5) == 5
        assert get_scenario("gnp-sparse").effective_a(64, 2) == 2  # no bound


class TestCompatibility:
    def test_mst_requires_weights(self):
        mst = get_algorithm("mst")
        assert mst.requires == ("weights",)
        with pytest.raises(ScenarioCompatibilityError) as exc:
            check_compatible(mst, get_scenario("grid"))
        assert "weights" in str(exc.value)
        assert "grid-unique-weights" in str(exc.value)  # suggests a fix

    def test_bfs_requires_connected(self):
        bfs = get_algorithm("bfs")
        assert not is_compatible(bfs, get_scenario("cliques-disconnected"))
        assert is_compatible(bfs, get_scenario("grid"))

    def test_unrestricted_algorithms_accept_everything(self):
        mis = get_algorithm("mis")
        assert set(compatible_scenarios(mis)) == set(scenario_names())

    def test_unknown_requirement_is_clean_error(self):
        spec = get_scenario("grid")
        with pytest.raises(ConfigurationError, match="unknown algorithm requirement"):
            spec.provides("telepathy")

    def test_every_runnable_algorithm_has_six_plus_families(self):
        # The acceptance floor: each algorithm keeps a >= 6-family axis.
        for alg in iter_algorithms():
            if alg.runnable:
                assert len(compatible_scenarios(alg)) >= 6, alg.name

    def test_session_rejects_incompatible_pair_cleanly(self):
        with pytest.raises(ScenarioCompatibilityError):
            Session().run(RunSpec("mst", 16, scenario="grid"))

    def test_matrix_grid_skips_incompatible_cells(self):
        specs, skipped = matrix_grid(
            ["mst", "mis"], ["grid", "grid-unique-weights"], n=16
        )
        assert ("mst", "grid") in skipped
        assert {(s.algorithm, s.scenario) for s in specs} == {
            ("mst", "grid-unique-weights"),
            ("mis", "grid"),
            ("mis", "grid-unique-weights"),
        }


class TestRegistration:
    def test_new_scenario_lands_on_every_axis(self):
        # Registering a scenario automatically makes it sweepable: it shows
        # up in scenario_names(), resolves canonically, participates in
        # matrix_grid, and is runnable through Session.
        try:
            @register_scenario(
                "zz-test-scenario",
                aliases=("ZZS",),
                summary="test entry",
                arboricity=lambda n, a: 1,
                diameter="linear",
            )
            def _build(n, a, seed):
                from repro.graphs import generators

                return generators.path(n)

            assert "zz-test-scenario" in scenario_names()
            assert canonical_scenario_name("zzs") == "zz-test-scenario"
            specs, skipped = matrix_grid(["mis"], ["zz-test-scenario"], n=8)
            assert [s.scenario for s in specs] == ["zz-test-scenario"]
            assert not skipped
            report = Session().run(RunSpec("mis", 8, scenario="ZZS"))
            assert report.spec.scenario == "zz-test-scenario"
            assert report.correct
        finally:
            _pop_scenario("zz-test-scenario")
            scenario_registry._ALIASES.pop("zzs", None)

    def test_reregistration_replaces(self):
        try:
            @register_scenario("zz-replace", summary="first")
            def _one(n, a, seed):  # pragma: no cover - never built
                return None

            @register_scenario("zz-replace", summary="second")
            def _two(n, a, seed):  # pragma: no cover - never built
                return None

            assert get_scenario("zz-replace").summary == "second"
        finally:
            _pop_scenario("zz-replace")


class TestSchemaWiring:
    def test_scenario_free_spec_serializes_without_the_key(self):
        # Byte-compat: results files without scenarios are identical to the
        # pre-scenario schema.
        spec = RunSpec("mis", 16)
        assert "scenario" not in spec.to_dict()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_roundtrips_through_json(self):
        spec = RunSpec("mis", 16, scenario="grid")
        assert spec.to_dict()["scenario"] == "grid"
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec("mis", 16, scenario="  ")

    def test_report_records_canonical_scenario(self):
        report = Session().run(RunSpec("mis", 16, scenario="PA"))
        data = json.loads(report.to_json_line())
        assert data["spec"]["scenario"] == "pa-heavy-tail"

    def test_scenario_free_report_bytes_have_no_scenario_key(self):
        report = Session().run(RunSpec("mis", 16, seed=1))
        assert '"scenario"' not in report.to_json_line()


class TestSessionWiring:
    def test_workload_cached_per_scenario_key(self):
        session = Session()
        session.run(RunSpec("mis", 16, seed=1, scenario="grid"))
        key = ("mis", "grid", 16, 2, 1)
        assert key in session._workload_cache
        g = session._workload_cache[key]
        session.run(RunSpec("mis", 16, seed=1, scenario="grid"))
        assert session._workload_cache[key] is g

    def test_row_labels_a_with_the_scenario_bound(self):
        report = Session().run(RunSpec("mis", 16, seed=1, scenario="grid"))
        assert report.row["a"] <= 3  # the declared planar bound, not the knob
        assert report.spec.a == 2  # the sweep knob is preserved in the spec

    def test_unbounded_scenario_rows_use_the_greedy_estimate(self):
        # gnp-sparse declares no arboricity bound; the (ignored) sweep knob
        # must not masquerade as one — the row falls back to the greedy
        # upper bound instead of understating `a`.
        report = Session().run(RunSpec("mis", 48, seed=1, scenario="gnp-sparse"))
        assert report.row["a"] == report.row["a_greedy"] >= report.row["a_lower"]

    def test_family_extra_conflicts_with_scenario(self):
        spec = RunSpec("bfs", 16, extras={"family": "grid"}, scenario="grid")
        with pytest.raises(ConfigurationError, match="deprecated alias"):
            Session().run(spec)

    def test_scenario_spec_reruns_verbatim(self):
        session = Session()
        first = session.run(RunSpec("matching", 16, seed=1, scenario="star"))
        again = session.run(first.spec)
        assert again.to_json_line() == first.to_json_line()

    def test_sweep_grid_scenario_axis(self):
        specs = sweep_grid(["mis"], [16], seeds=[0, 1], scenarios=["grid", "star"])
        assert [(s.scenario, s.seed) for s in specs] == [
            ("grid", 0), ("grid", 1), ("star", 0), ("star", 1),
        ]

    @pytest.mark.engine("reference")  # pins its own engines; skip replays
    def test_scenario_sweep_parallel_bytes_equal_serial(self, tmp_path):
        specs = sweep_grid(
            ["mis", "matching"],
            [16],
            seeds=[0, 1],
            scenarios=["grid", "pa-heavy-tail", "cliques-disconnected"],
        ) + sweep_grid(
            ["mst"], [16], seeds=[0], scenarios=["grid-unique-weights"]
        )
        serial = Session().run_many(specs, jobs=1, out=str(tmp_path / "s.jsonl"))
        Session().run_many(specs, jobs=4, out=str(tmp_path / "p.jsonl"))
        assert (tmp_path / "s.jsonl").read_bytes() == (
            tmp_path / "p.jsonl"
        ).read_bytes()
        assert all(r.correct for r in serial)
        assert {r.spec.scenario for r in serial} == {
            "grid", "pa-heavy-tail", "cliques-disconnected",
            "grid-unique-weights",
        }


class TestEveryAlgorithmOnSixFamilies:
    """The acceptance grid: every runnable algorithm executes correctly on
    (at least) its first six compatible scenario families through Session."""

    RUNNABLE = [a.name for a in iter_algorithms() if a.runnable]

    @pytest.mark.parametrize("alg_name", RUNNABLE)
    def test_six_families_run_correct(self, alg_name):
        alg = get_algorithm(alg_name)
        families = compatible_scenarios(alg)[:6]
        assert len(families) == 6
        session = Session()
        for family in families:
            report = session.run(RunSpec(alg_name, 12, seed=1, scenario=family))
            assert report.correct, f"{alg_name} on {family}"
            assert report.spec.scenario == family
