"""Butterfly topology: structure, hosting, unique paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly.topology import BFNode, ButterflyGrid


class TestDimensions:
    @pytest.mark.parametrize(
        "n,d,cols", [(1, 0, 1), (2, 1, 2), (3, 1, 2), (4, 2, 4), (7, 2, 4), (8, 3, 8), (1000, 9, 512)]
    )
    def test_d_is_floor_log2(self, n, d, cols):
        bf = ButterflyGrid(n)
        assert bf.d == d
        assert bf.columns == cols
        assert bf.levels == d + 1

    def test_counts(self):
        bf = ButterflyGrid(16)
        assert bf.node_count() == 5 * 16
        # d layers, each with 2^d straight + 2^d cross edges.
        assert bf.edge_count() == 4 * 16 * 2

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            ButterflyGrid(0)


class TestHosting:
    def test_host_is_column(self):
        bf = ButterflyGrid(16)
        assert bf.host(BFNode(3, 5)) == 5

    def test_emulates(self):
        bf = ButterflyGrid(10)  # d=3, 8 columns
        assert bf.emulates(7)
        assert not bf.emulates(8)
        assert not bf.emulates(9)

    def test_partner_mapping(self):
        bf = ButterflyGrid(10)
        assert bf.partner(8) == BFNode(0, 0)
        assert bf.partner(9) == BFNode(0, 1)
        assert bf.partner(3) is None

    def test_partner_of_column(self):
        bf = ButterflyGrid(10)
        assert bf.partner_of_column(0) == 8
        assert bf.partner_of_column(1) == 9
        assert bf.partner_of_column(2) is None


class TestEdges:
    def test_down_neighbors_differ_at_level_bit(self):
        bf = ButterflyGrid(16)
        straight, cross = bf.down_neighbors(BFNode(1, 5))
        assert straight == BFNode(2, 5)
        assert cross == BFNode(2, 5 ^ 2)

    def test_up_neighbors_differ_at_level_minus_one_bit(self):
        bf = ButterflyGrid(16)
        straight, cross = bf.up_neighbors(BFNode(2, 5))
        assert straight == BFNode(1, 5)
        assert cross == BFNode(1, 5 ^ 2)

    def test_up_down_are_inverse(self):
        bf = ButterflyGrid(32)
        for col in range(bf.columns):
            for lvl in range(bf.d):
                for nb in bf.down_neighbors(BFNode(lvl, col)):
                    assert BFNode(lvl, col) in bf.up_neighbors(nb)

    def test_boundary_levels_rejected(self):
        bf = ButterflyGrid(16)
        with pytest.raises(ValueError):
            bf.down_neighbors(BFNode(bf.d, 0))
        with pytest.raises(ValueError):
            bf.up_neighbors(BFNode(0, 0))

    def test_out_of_range_nodes_rejected(self):
        bf = ButterflyGrid(16)
        with pytest.raises(ValueError):
            bf.host(BFNode(0, 99))
        with pytest.raises(ValueError):
            bf.host(BFNode(9, 0))

    def test_is_local_edge(self):
        bf = ButterflyGrid(16)
        assert bf.is_local_edge(BFNode(0, 3), BFNode(1, 3))
        assert not bf.is_local_edge(BFNode(0, 3), BFNode(1, 2))


class TestPaths:
    @given(st.integers(min_value=2, max_value=256), st.data())
    @settings(max_examples=100)
    def test_path_down_reaches_target(self, n, data):
        bf = ButterflyGrid(n)
        start = data.draw(st.integers(min_value=0, max_value=bf.columns - 1))
        target = data.draw(st.integers(min_value=0, max_value=bf.columns - 1))
        path = bf.path_down(start, target)
        assert path[0] == BFNode(0, start)
        assert path[-1] == BFNode(bf.d, target)
        assert len(path) == bf.d + 1
        # consecutive hops are butterfly edges
        for a, b in zip(path, path[1:]):
            assert b in bf.down_neighbors(a)

    def test_path_fixes_bits_in_order(self):
        bf = ButterflyGrid(16)
        path = bf.path_down(0b0101, 0b1010)
        cols = [p.column for p in path]
        # after fixing bit i, low i+1 bits match the target
        for i, col in enumerate(cols[1:]):
            mask = (1 << (i + 1)) - 1
            assert col & mask == 0b1010 & mask

    def test_down_next_matches_path(self):
        bf = ButterflyGrid(64)
        node = BFNode(0, 13)
        target = 42
        while node.level < bf.d:
            nxt = bf.down_next(node, target)
            assert nxt in bf.down_neighbors(node)
            node = nxt
        assert node.column == target

    def test_enumeration(self):
        bf = ButterflyGrid(8)
        assert len(list(bf.all_nodes())) == bf.node_count()
        assert len(list(bf.level_nodes(0))) == bf.columns
        with pytest.raises(ValueError):
            list(bf.level_nodes(bf.d + 1))

    def test_degenerate_single_node(self):
        bf = ButterflyGrid(1)
        assert bf.d == 0
        assert bf.columns == 1
        assert list(bf.all_nodes()) == [BFNode(0, 0)]
