"""k-machine model and the NCC conversion (Appendix A)."""

import pytest

from repro import NCCRuntime
from repro.errors import ConfigurationError
from repro.kmachine import KMachineNetwork, KMachineSimulation, simulate_on_k_machines
from repro.kmachine.model import random_vertex_partition
from repro.graphs import generators
from tests.conftest import make_runtime


class TestKMachineNetwork:
    def test_basic_delivery(self):
        km = KMachineNetwork(4)
        km.send(0, 1, "a")
        km.send(2, 1, "b")
        inbox = km.exchange()
        assert sorted(inbox[1]) == [(0, "a"), (2, "b")]
        assert km.stats.rounds == 1

    def test_link_saturation_costs_rounds(self):
        km = KMachineNetwork(3)
        for i in range(5):
            km.send(0, 1, i)
        km.exchange()
        assert km.stats.rounds == 5  # one message per link per round
        assert km.stats.max_link_load == 5

    def test_parallel_links_share_round(self):
        km = KMachineNetwork(4)
        km.send(0, 1, "a")
        km.send(0, 2, "b")
        km.send(3, 1, "c")
        km.exchange()
        assert km.stats.rounds == 1

    def test_local_messages_free(self):
        km = KMachineNetwork(2)
        km.send(0, 0, "self")
        inbox = km.exchange()
        assert inbox == {}
        assert km.stats.messages == 0

    def test_broadcast(self):
        km = KMachineNetwork(4)
        km.broadcast(2, "hello")
        inbox = km.exchange()
        assert set(inbox) == {0, 1, 3}

    def test_messages_per_link_bandwidth(self):
        km = KMachineNetwork(2, messages_per_link=4)
        for i in range(8):
            km.send(0, 1, i)
        km.exchange()
        assert km.stats.rounds == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            KMachineNetwork(1)
        with pytest.raises(ConfigurationError):
            KMachineNetwork(4, messages_per_link=0)
        km = KMachineNetwork(4)
        with pytest.raises(ValueError):
            km.send(0, 9, "x")


class TestPartition:
    def test_deterministic(self):
        assert random_vertex_partition(50, 4, seed=1) == random_vertex_partition(50, 4, seed=1)

    def test_range(self):
        part = random_vertex_partition(100, 8, seed=2)
        assert len(part) == 100
        assert set(part) <= set(range(8))

    def test_roughly_balanced(self):
        part = random_vertex_partition(400, 4, seed=3)
        counts = [part.count(m) for m in range(4)]
        assert all(50 < c < 150 for c in counts)


class TestConversion:
    def run_mis_under_conversion(self, n, k, seed=1):
        from repro.algorithms import MISAlgorithm

        g = generators.forest_union(n, 2, seed=4)
        rt = make_runtime(n, seed=seed, lightweight_sync=True, strict=False)
        sim = KMachineSimulation(rt.net, k, seed=seed)
        res = MISAlgorithm(rt, g).run()
        cost = sim.detach()
        return res, cost

    def test_cost_fields_consistent(self):
        res, cost = self.run_mis_under_conversion(32, 4)
        assert cost.ncc_rounds > 0
        assert cost.kmachine_rounds >= cost.ncc_rounds
        assert cost.cross_messages + cost.local_messages > 0

    def test_more_machines_fewer_rounds(self):
        """Corollary 2: cost scales ~1/k²; doubling k must help."""
        _, c2 = self.run_mis_under_conversion(48, 2)
        _, c8 = self.run_mis_under_conversion(48, 8)
        assert c8.kmachine_rounds < c2.kmachine_rounds

    def test_detach_restores_observer(self):
        rt = make_runtime(8)
        sim = KMachineSimulation(rt.net, 2)
        sim.detach()
        assert rt.net.round_observer is None

    def test_observers_chain(self):
        rt = make_runtime(8)
        seen = []
        rt.net.round_observer = lambda r, p: seen.append(r)
        sim = KMachineSimulation(rt.net, 2)
        rt.net.exchange(())
        assert seen == [0]  # previous observer still called
        sim.detach()

    def test_rejects_k_below_two(self):
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            KMachineSimulation(rt.net, 1)

    def test_wrapper(self):
        from repro.algorithms import MISAlgorithm
        from repro.analysis.tables import bench_config

        g = generators.forest_union(16, 2, seed=5)
        result, cost = simulate_on_k_machines(
            lambda: NCCRuntime(16, bench_config(1)),
            lambda rt: MISAlgorithm(rt, g).run(),
            4,
        )
        assert cost.ncc_rounds > 0
        assert len(result.members) > 0
