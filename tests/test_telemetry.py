"""The telemetry subsystem: tracer, metrics, exporters, bounds, sweep merge.

The contract under test (ROADMAP "Experiment surface" +
``docs/OBSERVABILITY.md``): telemetry is *observational*.  Installing a
tracer changes no canonical byte — ``RunReport.to_json_line()`` is
pinned byte-identical with tracing on and off — the structure of a trace
(kinds, names, field dicts, in order) is a deterministic function of the
spec, and only ``perf_counter`` timestamps vary between runs.
"""

import json
import os

import pytest

from repro.api import RunSpec, Session
from repro.telemetry import (
    METRICS,
    MetricRegistry,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from repro.telemetry.bounds import bounds_rows, evaluate_bound, render_bounds
from repro.telemetry.export import (
    build_chrome_doc,
    load_trace,
    payload_rows,
    run_metas,
    summarize,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.telemetry.sweep import SweepTelemetry


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_records_in_completion_order(self):
        tr = Tracer(label="t")
        tr.begin("outer")
        tr.begin("inner", depth=2)
        tr.end()
        tr.end(rounds=3)
        assert tr.structure() == [
            ("span", "inner", {"depth": 2}),
            ("span", "outer", {"rounds": 3}),
        ]

    def test_event_and_add_span(self):
        tr = Tracer()
        tr.event("violation", node=3, count=9)
        t0 = tr.now()
        tr.add_span("round", t0, tr.now(), round=0, messages=4)
        kinds = [(kind, name) for kind, name, _ in tr.structure()]
        assert kinds == [("event", "violation"), ("span", "round")]

    def test_end_tolerates_empty_stack(self):
        tr = Tracer()
        tr.end()  # tracer installed mid-phase: exit without the enter
        assert tr.structure() == []

    def test_span_contextmanager(self):
        tr = Tracer()
        with tr.span("work", key=1):
            pass
        assert tr.structure() == [("span", "work", {"key": 1})]

    def test_install_uninstall_restores_slot(self):
        # baseline is None normally, the replay tracer under --tracing
        baseline = current_tracer()
        outer = Tracer()
        prev = install_tracer(outer)
        try:
            assert prev is baseline
            with tracing(label="inner") as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer
        finally:
            uninstall_tracer(prev)
        assert current_tracer() is baseline

    def test_payload_is_plain_data(self):
        tr = Tracer(label="p")
        tr.event("x", k=1)
        payload = tr.to_payload()
        assert payload["meta"] == {"label": "p"}
        assert json.loads(json.dumps(payload))  # picklable/serializable shape
        assert set(payload) == {"meta", "records", "counters"}


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_get_or_create(self):
        reg = MetricRegistry()
        c = reg.counter("x.y")
        c.inc()
        c.inc(4)
        assert reg.counter("x.y") is c
        assert reg.snapshot()["x.y"] == 5

    def test_name_collision_rejected(self):
        reg = MetricRegistry()
        reg.counter("dup")
        with pytest.raises(ValueError):
            reg.register_source("dup", lambda: 0)
        reg.register_source("src", lambda: 7)
        with pytest.raises(ValueError):
            reg.counter("src")

    def test_snapshot_sorted_and_reads_sources(self):
        reg = MetricRegistry()
        reg.counter("b").inc(2)
        reg.register_source("a", lambda: 9)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a"] == 9 and snap["b"] == 2

    def test_delta_keeps_nonzero_movements_only(self):
        before = {"a": 1, "b": 5}
        after = {"a": 1, "b": 9, "c": 2}
        assert MetricRegistry.delta(before, after) == {"b": 4, "c": 2}

    def test_global_registry_exposes_hotpath_sources(self):
        snap = METRICS.snapshot()
        assert "ncc.messages_constructed" in snap
        assert "ncc.payload_boxes" in snap


# ----------------------------------------------------------------------
# The observational contract (the acceptance pins)
# ----------------------------------------------------------------------
def _run_traced(spec):
    with tracing(label="test") as tr:
        report = Session().run(spec)
    return report, tr


class TestObservationalContract:
    def test_canonical_jsonl_byte_identical_with_tracing(self):
        spec = RunSpec("mis", 24, seed=3)
        plain = Session().run(spec)
        traced, _ = _run_traced(spec)
        assert traced.to_json_line() == plain.to_json_line()

    def test_trace_structure_is_deterministic(self):
        spec = RunSpec("matching", 24, seed=5)
        _, tr1 = _run_traced(spec)
        _, tr2 = _run_traced(spec)
        assert tr1.structure() == tr2.structure()

    def test_run_span_carries_spec_and_totals(self):
        spec = RunSpec("mis", 16, seed=1)
        report, tr = _run_traced(spec)
        runs = [r for r in tr.structure() if r[1] == "run"]
        assert len(runs) == 1
        fields = runs[0][2]
        assert fields["algorithm"] == "mis"
        assert fields["n"] == 16
        assert fields["rounds"] == report.rounds
        assert fields["messages"] == report.messages

    def test_round_and_phase_spans_reconcile_with_stats(self):
        spec = RunSpec("mis", 16, seed=1)
        report, tr = _run_traced(spec)
        rounds = [f for kind, name, f in tr.structure() if name == "round"]
        assert len(rounds) == report.rounds
        assert sum(f["messages"] for f in rounds) == report.messages


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_doc():
    with tracing(label="doc-fixture") as tr:
        Session().run(RunSpec("mis", 16, seed=1))
    return build_chrome_doc(payload_rows(tr))


class TestExport:
    def test_chrome_doc_shape(self, traced_doc):
        assert set(traced_doc) == {"displayTimeUnit", "otherData", "traceEvents"}
        events = traced_doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        assert events[0]["args"]["name"] == "doc-fixture"
        for ev in events[1:]:
            assert ev["ph"] in ("X", "i")
            assert ev["pid"] == 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        rows = traced_doc["otherData"]["rows"]
        assert rows[0]["pid"] == 0
        assert "ncc.messages_constructed" in rows[0]["counters"]

    def test_payload_rows_pid_scheme(self):
        parent = Tracer(label="p")
        rows = payload_rows(parent, [(0, {"records": []}), (2, {})])
        # empty row payloads are dropped; row i maps to pid i + 1
        assert [pid for pid, _ in rows] == [0, 1]

    def test_write_load_roundtrip_and_sorted_keys(self, tmp_path, traced_doc):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, traced_doc)
        assert load_trace(path) == traced_doc
        raw = open(path, encoding="utf-8").read()
        assert raw == json.dumps(traced_doc, sort_keys=True) + "\n"

    def test_load_rejects_non_trace(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_events_jsonl_skips_metadata(self, tmp_path, traced_doc):
        path = str(tmp_path / "events.jsonl")
        write_events_jsonl(path, traced_doc)
        lines = [json.loads(ln) for ln in open(path, encoding="utf-8")]
        assert lines
        assert all(ev["ph"] != "M" for ev in lines)

    def test_summarize_mentions_runs_and_phases(self, traced_doc):
        text = summarize(traced_doc)
        assert "algorithm=mis" in text
        assert "phase" in text
        assert "counters:" in text

    def test_run_metas(self, traced_doc):
        metas = run_metas(traced_doc)
        assert len(metas) == 1
        assert metas[0]["algorithm"] == "mis"
        assert metas[0]["pid"] == 0


# ----------------------------------------------------------------------
# Bounds evaluation
# ----------------------------------------------------------------------
class TestBounds:
    def test_plain_power_log(self):
        budget, note = evaluate_bound("O(log^4 n)", n=16)
        assert budget == pytest.approx(4.0**4)
        assert note == ""

    def test_sum_and_product(self):
        # (a + D + log n) log n with D = log2 n = 4
        budget, _ = evaluate_bound("O((a + D + log n) log n)", n=16, a=2)
        assert budget == pytest.approx((2 + 4 + 4) * 4)

    def test_fractional_log_power(self):
        budget, _ = evaluate_bound("O((a + log n) log^{3/2} n)", n=16, a=2)
        assert budget == pytest.approx((2 + 4) * 4**1.5)

    def test_log_w_and_qualifier_note(self):
        budget, note = evaluate_bound(
            "O(log W log n) per invocation", n=16, W=1024
        )
        assert budget == pytest.approx(10 * 4)
        assert note == "per invocation"

    def test_every_registered_bound_evaluates(self):
        from repro.registry import get_algorithm, iter_algorithms

        checked = 0
        for spec in iter_algorithms():
            bound = getattr(spec, "bound", None)
            if not bound:
                continue
            evaluated = evaluate_bound(bound, n=64, a=3)
            assert evaluated is not None, f"{spec.name}: {bound!r} did not parse"
            assert evaluated[0] > 0
            checked += 1
        assert checked >= 5
        assert get_algorithm("mst").bound  # the Table 1 anchor stays bound

    def test_unparseable_bounds_return_none(self):
        assert evaluate_bound("polylog(n)", n=16) is None
        assert evaluate_bound("O(import os)", n=16) is None
        assert evaluate_bound("O(__builtins__)", n=16) is None

    def test_bounds_rows_and_render(self, traced_doc):
        rows = bounds_rows(traced_doc)
        assert len(rows) == 1
        row = rows[0]
        assert row["algorithm"] == "mis"
        assert row["budget"] and row["ratio"]
        text = render_bounds(traced_doc)
        assert "mis" in text and "ratio" in text

    def test_render_empty_trace(self):
        text = render_bounds({"traceEvents": []})
        assert "no run spans" in text


# ----------------------------------------------------------------------
# Sweep telemetry: serial and pooled rows merge into one document
# ----------------------------------------------------------------------
def _grid():
    return [RunSpec("mis", 16, seed=s) for s in (0, 1)] + [
        RunSpec("matching", 16, seed=0)
    ]


class TestSweepTelemetry:
    def test_serial_rows_collected_and_finalized(self, tmp_path):
        tele = SweepTelemetry(str(tmp_path / "tele"))
        with Session() as session:
            reports = session.run_many(_grid(), telemetry=tele)
        assert sorted(tele.rows) == [0, 1, 2]
        paths = tele.finalize()
        doc = load_trace(paths["trace"])
        metas = run_metas(doc)
        assert [m["pid"] for m in metas] == [1, 2, 3]
        assert {m["algorithm"] for m in metas} == {"mis", "matching"}
        assert os.path.exists(paths["events"])
        summary = open(paths["summary"], encoding="utf-8").read()
        assert "algorithm=matching" in summary
        assert len(reports) == 3

    def test_serial_jsonl_byte_identical_with_telemetry(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        traced = tmp_path / "traced.jsonl"
        with Session() as session:
            session.run_many(_grid(), out=str(plain))
        tele = SweepTelemetry(str(tmp_path / "tele"))
        with Session() as session:
            session.run_many(_grid(), out=str(traced), telemetry=tele)
        assert traced.read_bytes() == plain.read_bytes()

    def test_persistent_pool_rows_ship_traces(self, tmp_path):
        from repro.api.pool import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        tele = SweepTelemetry(str(tmp_path / "tele"))
        with Session(pool="persistent") as session:
            reports = session.run_many(_grid(), jobs=2, telemetry=tele)
        assert len(reports) == 3
        assert sorted(tele.rows) == [0, 1, 2]
        doc = tele.build_doc()
        # parent track (pid 0) + one track per row
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert pids == {0, 1, 2, 3}
        # pool lifecycle events land on the parent track
        names = {
            ev["name"]
            for ev in doc["traceEvents"]
            if ev["pid"] == 0 and ev["ph"] == "i"
        }
        assert "pool-dispatch" in names

    def test_pool_jsonl_byte_identical_with_telemetry(self, tmp_path):
        from repro.api.pool import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        plain = tmp_path / "plain.jsonl"
        traced = tmp_path / "traced.jsonl"
        with Session(pool="persistent") as session:
            session.run_many(_grid(), jobs=2, out=str(plain))
        tele = SweepTelemetry(str(tmp_path / "tele"))
        with Session(pool="persistent") as session:
            session.run_many(_grid(), jobs=2, out=str(traced), telemetry=tele)
        assert traced.read_bytes() == plain.read_bytes()


# ----------------------------------------------------------------------
# Degradation reasons (satellite: sharded fallbacks must carry *why*)
# ----------------------------------------------------------------------
class TestDegradationEvents:
    def test_no_shared_memory_reason(self, monkeypatch):
        np = pytest.importorskip("numpy")
        import repro.api.pool as pool_mod
        from repro import Enforcement, NCCConfig, NCCNetwork
        from repro.ncc.message import BatchBuilder
        from repro.ncc.sharded import CUTOFF_EXTRA

        monkeypatch.setattr(pool_mod, "shared_memory_available", lambda: False)
        cfg = NCCConfig(
            engine="sharded", shards=2, seed=1,
            enforcement=Enforcement.COUNT, extras={CUTOFF_EXTRA: 1},
        )
        nw = NCCNetwork(16, cfg)
        out = BatchBuilder(kind="t", dtype=np.int64)
        src = np.repeat(np.arange(16, dtype=np.int64), 3)
        shift = np.tile(np.arange(1, 4, dtype=np.int64), 16)
        out.add_arrays(src, (src + shift) % 16, src * 10 + shift)
        with tracing() as tr:
            inbox = nw.exchange(out)
        assert inbox  # the round still delivers, single-process
        degraded = [
            f for _, name, f in tr.structure() if name == "sharded-degraded"
        ]
        assert degraded == [{"reason": "no-shared-memory", "shards": 2}]
        assert nw.engine._disabled_reason == "no-shared-memory"

    def test_degrade_event_fires_once(self):
        from repro.ncc.sharded.engine import ShardedEngine

        class _Net:
            class config:
                shards = 1
                extras = {}

            n = 4

        eng = ShardedEngine.__new__(ShardedEngine)
        eng.shards = 1
        eng._disabled = False
        eng._disabled_reason = None
        with tracing() as tr:
            eng._degrade("all-workers-dead")
            eng._degrade("no-shared-memory")  # idempotent: first reason wins
        assert eng._disabled_reason == "all-workers-dead"
        events = [name for _, name, _ in tr.structure()]
        assert events == ["sharded-degraded"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_run_trace_and_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "out.json")
        assert main(["run", "mis", "--n", "16", "--seed", "1",
                     "--trace", trace]) == 0
        err = capsys.readouterr().err
        assert "trace written" in err
        assert main(["trace", trace]) == 0
        out = capsys.readouterr().out
        assert "algorithm=mis" in out
        assert main(["trace", trace, "--bounds"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_main_tolerates_broken_pipe(self, tmp_path, monkeypatch):
        # `repro trace FILE | head -n 1` closes stdout early; the CLI must
        # exit 0, not traceback (verify.sh runs exactly that pipeline).
        import sys

        from repro.cli import main

        trace = str(tmp_path / "out.json")
        assert main(["run", "mis", "--n", "16", "--seed", "1",
                     "--trace", trace]) == 0

        sink = open(tmp_path / "sink", "w")  # real fd for the dup2 recovery
        try:
            class _ClosedPipe:
                def write(self, s):
                    raise BrokenPipeError

                def flush(self):
                    pass

                def fileno(self):
                    return sink.fileno()

            monkeypatch.setattr(sys, "stdout", _ClosedPipe())
            assert main(["trace", trace]) == 0
        finally:
            sink.close()

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["trace", str(bad)]) == 2
        assert "trace" in capsys.readouterr().err

    def test_sweep_telemetry_dir(self, tmp_path, capsys):
        from repro.cli import main

        tele = str(tmp_path / "tele")
        out = str(tmp_path / "rows.jsonl")
        assert main(["sweep", "--algos", "mis", "--ns", "16", "--seeds",
                     "0:2", "--out", out, "--telemetry", tele]) == 0
        err = capsys.readouterr().err
        assert "telemetry written" in err
        doc = load_trace(os.path.join(tele, "trace.json"))
        assert len(run_metas(doc)) == 2
        for name in ("trace.json", "events.jsonl", "summary.txt"):
            assert os.path.exists(os.path.join(tele, name))
