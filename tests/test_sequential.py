"""Sequential baselines: oracles validated against networkx and each other."""

import networkx as nx
import pytest

from repro import InputGraph
from repro.baselines import sequential as seq
from repro.graphs import generators, weights


class TestKruskal:
    def test_matches_networkx_weight(self):
        for seed in range(4):
            g = weights.with_random_weights(
                generators.random_connected(24, 0.12, seed=seed), seed=seed + 9
            )
            ours = seq.msf_weight(g)
            theirs = sum(
                d["weight"]
                for _, _, d in nx.minimum_spanning_edges(g.to_networkx(), data=True)
            )
            assert ours == theirs

    def test_unique_weights_match_networkx_edges(self):
        g = weights.with_unique_weights(
            generators.random_connected(20, 0.15, seed=5), seed=6
        )
        ours = seq.kruskal_msf(g)
        theirs = {
            tuple(sorted(e[:2]))
            for e in nx.minimum_spanning_edges(g.to_networkx(), data=False)
        }
        assert ours == theirs

    def test_forest_count_on_disconnected(self):
        g = weights.with_unique_weights(generators.disjoint_cliques(12, 4), seed=1)
        assert len(seq.kruskal_msf(g)) == 9  # 3 components x 3 edges

    def test_spanning(self):
        g = weights.with_unique_weights(generators.grid(4, 4), seed=2)
        msf = seq.kruskal_msf(g)
        assert len(msf) == 15


class TestBFS:
    def test_matches_networkx(self):
        g = generators.forest_union(20, 2, seed=3)
        dist, parent = seq.bfs_tree(g, 0)
        expected = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        for v in range(20):
            assert dist[v] == expected.get(v)

    def test_parent_smallest_id(self):
        g = InputGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        dist, parent = seq.bfs_tree(g, 0)
        assert parent[3] == 1  # both 1 and 2 are predecessors; 1 < 2


class TestCheckers:
    def test_mis_checker_accepts_greedy(self):
        g = generators.gnp(20, 0.2, seed=4)
        assert seq.is_maximal_independent_set(g, seq.greedy_mis(g))

    def test_mis_checker_rejects_dependent(self):
        g = generators.path(4)
        assert not seq.is_independent_set(g, {0, 1})

    def test_mis_checker_rejects_non_maximal(self):
        g = generators.path(5)
        assert not seq.is_maximal_independent_set(g, {0})

    def test_matching_checker_accepts_greedy(self):
        g = generators.gnp(20, 0.2, seed=5)
        assert seq.is_maximal_matching(g, seq.greedy_matching(g))

    def test_matching_checker_rejects_shared_endpoint(self):
        g = generators.path(4)
        assert not seq.is_matching(g, {(0, 1), (1, 2)})

    def test_matching_checker_rejects_non_edges(self):
        g = generators.path(4)
        assert not seq.is_matching(g, {(0, 3)})

    def test_matching_checker_rejects_non_maximal(self):
        g = generators.path(6)
        assert not seq.is_maximal_matching(g, {(0, 1)})

    def test_coloring_checker_accepts_greedy(self):
        g = generators.gnp(20, 0.2, seed=6)
        assert seq.is_proper_coloring(g, seq.greedy_coloring(g))

    def test_coloring_checker_rejects_conflict(self):
        g = generators.path(3)
        assert not seq.is_proper_coloring(g, {0: 0, 1: 0, 2: 1})

    def test_coloring_checker_requires_totality(self):
        g = generators.path(3)
        assert not seq.is_proper_coloring(g, {0: 0, 1: 1})


class TestDegeneracyColoring:
    def test_uses_at_most_degeneracy_plus_one(self):
        from repro.graphs.arboricity import degeneracy_order

        for seed in range(3):
            g = generators.forest_union(24, 3, seed=seed)
            colors = seq.degeneracy_coloring(g)
            _, degeneracy = degeneracy_order(g)
            assert seq.is_proper_coloring(g, colors)
            assert len(set(colors.values())) <= degeneracy + 1

    def test_tree_two_colors(self):
        g = generators.random_tree(20, seed=7)
        colors = seq.degeneracy_coloring(g)
        assert len(set(colors.values())) <= 2
