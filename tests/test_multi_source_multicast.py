"""The multi-source extension (Appendix B.4/B.5 remarks): one node sources
many multicast groups without breaching its send capacity."""

import pytest

from repro.primitives import MIN, SUM
from tests.conftest import make_runtime


class TestMultiSourceMulticast:
    def setup_many_groups(self, rt, groups, members_per_group=3):
        memberships = {}
        for g in range(groups):
            for j in range(members_per_group):
                u = (g * members_per_group + j + 1) % rt.n
                memberships.setdefault(u, []).append(("grp", g))
        return rt.multicast_setup(memberships)

    def test_single_source_of_many_groups_strict(self):
        """Node 0 sources 40 groups: the source→root step must batch at the
        capacity limit (a single round would need 40 > capacity sends)."""
        rt = make_runtime(32, seed=1)
        groups = 40
        trees = self.setup_many_groups(rt, groups)
        packets = {("grp", g): 1000 + g for g in range(groups)}
        sources = {("grp", g): 0 for g in range(groups)}
        out = rt.multicast(trees, packets, sources, ell_bound=4)
        assert rt.net.stats.violation_count == 0
        delivered = {g for got in out.received.values() for g in got}
        assert delivered == set(packets)

    def test_payloads_correct_per_group(self):
        rt = make_runtime(24, seed=2)
        groups = 30
        trees = self.setup_many_groups(rt, groups)
        packets = {("grp", g): ("v", g) for g in range(groups)}
        sources = {("grp", g): 5 for g in range(groups)}
        out = rt.multicast(trees, packets, sources, ell_bound=5)
        for u, got in out.received.items():
            for g, payload in got.items():
                assert payload == ("v", g[1])

    def test_multi_source_multi_aggregation_strict(self):
        rt = make_runtime(32, seed=3)
        groups = 36
        trees = self.setup_many_groups(rt, groups, members_per_group=2)
        packets = {("grp", g): g for g in range(groups)}
        sources = {("grp", g): 1 for g in range(groups)}
        out = rt.multi_aggregation(trees, packets, sources, MIN)
        assert rt.net.stats.violation_count == 0
        # every member received the min over the groups it joined
        for u, value in out.values.items():
            joined = [
                g[1]
                for g in trees.leaf_members
                if any(u in ms for ms in trees.leaf_members[g].values())
            ]
            assert value == min(joined)

    def test_mixed_sources_share_rounds(self):
        """Two sources with many groups each: batching interleaves, rounds
        scale with the max per-source count, not the total."""
        rt = make_runtime(32, seed=4)
        groups = 32
        trees = self.setup_many_groups(rt, groups)
        packets = {("grp", g): g for g in range(groups)}
        sources = {("grp", g): (0 if g % 2 == 0 else 7) for g in range(groups)}
        before = rt.net.round_index
        rt.multicast(trees, packets, sources, ell_bound=4)
        rounds = rt.net.round_index - before
        # 16 packets per source at capacity 20: one injection round + the
        # spreading/leaf phases; far below a per-group serialization.
        assert rounds < groups * 2
        assert rt.net.stats.violation_count == 0
