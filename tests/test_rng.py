"""SharedRandomness: determinism, agreement caching and charging."""

import pytest

from repro import NCCConfig, NCCRuntime
from repro.rng import SharedRandomness


class TestDeterminism:
    def test_same_tag_same_function(self):
        s = SharedRandomness(NCCConfig(seed=1), 64)
        assert s.hash_function("t", 100) is s.hash_function("t", 100)

    def test_two_brokers_same_seed_agree(self):
        a = SharedRandomness(NCCConfig(seed=9), 64)
        b = SharedRandomness(NCCConfig(seed=9), 64)
        fa, fb = a.hash_function("x", 50), b.hash_function("x", 50)
        assert all(fa(i) == fb(i) for i in range(100))

    def test_different_seeds_disagree(self):
        a = SharedRandomness(NCCConfig(seed=1), 64)
        b = SharedRandomness(NCCConfig(seed=2), 64)
        fa, fb = a.hash_function("x", 1 << 20), b.hash_function("x", 1 << 20)
        assert any(fa(i) != fb(i) for i in range(50))

    def test_node_rng_streams_independent(self):
        s = SharedRandomness(NCCConfig(seed=1), 64)
        r1 = s.node_rng(0, "step").random()
        r2 = s.node_rng(1, "step").random()
        r1again = s.node_rng(0, "step").random()
        assert r1 == r1again
        assert r1 != r2

    def test_fresh_tags_unique(self):
        s = SharedRandomness(NCCConfig(seed=1), 64)
        tags = {s.fresh_tag("x") for _ in range(100)}
        assert len(tags) == 100


class TestSaltedKeys:
    def test_distinct_pairs_distinct_keys(self):
        seen = set()
        for nonce in range(20):
            for key in range(50):
                seen.add(SharedRandomness.salted_key(nonce, key))
        assert len(seen) == 20 * 50

    def test_large_keys_fold(self):
        big = 1 << 100
        k1 = SharedRandomness.salted_key(1, big)
        k2 = SharedRandomness.salted_key(1, big + 1)
        assert k1 != k2

    def test_nonce_counter_advances(self):
        s = SharedRandomness(NCCConfig(), 16)
        assert s.next_nonce() != s.next_nonce()


class TestAgreementCharging:
    def test_charge_called_once_per_tag(self):
        charges = []
        s = SharedRandomness(NCCConfig(seed=1), 64, charge=charges.append)
        s.hash_function("a", 100)
        s.hash_function("a", 100)
        s.hash_family("b", 4, 10)
        s.hash_family("b", 4, 10)
        assert len(charges) == 2
        assert s.agreement_bits == sum(charges)

    def test_charge_disabled_by_config(self):
        charges = []
        cfg = NCCConfig(seed=1, charge_hash_agreement=False)
        s = SharedRandomness(cfg, 64, charge=charges.append)
        s.hash_function("a", 100)
        assert charges == []
        assert s.agreement_bits > 0  # still accounted, just not charged

    def test_runtime_charges_real_broadcast_rounds(self):
        rt = NCCRuntime(32, NCCConfig(seed=1))
        before = rt.net.round_index
        rt.shared.hash_function("new-fn", 1000)
        assert rt.net.round_index > before
        assert rt.net.stats.phase("hash-agreement").rounds > 0

    def test_global_rank_function_agreed_once(self):
        rt = NCCRuntime(32, NCCConfig(seed=1))
        rt.shared.rank_function()
        rounds_after_first = rt.net.round_index
        rt.shared.rank_function()
        rt.shared.rank_function()
        assert rt.net.round_index == rounds_after_first
