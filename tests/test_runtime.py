"""NCCRuntime facade wiring."""

import pytest

from repro import NCCConfig, NCCRuntime


class TestConstruction:
    def test_seed_shortcut(self):
        rt = NCCRuntime(16, seed=9)
        assert rt.config.seed == 9

    def test_config_passthrough(self):
        cfg = NCCConfig(seed=3, capacity_multiplier=6)
        rt = NCCRuntime(16, cfg)
        assert rt.net.capacity == cfg.capacity(16)

    def test_seed_overrides_config(self):
        cfg = NCCConfig(seed=3)
        rt = NCCRuntime(16, cfg, seed=8)
        assert rt.config.seed == 8

    def test_components_consistent(self):
        rt = NCCRuntime(20)
        assert rt.n == 20
        assert rt.bf.n == 20
        assert rt.net.n == 20
        assert rt.log2n == 5

    def test_stats_summary_shape(self):
        rt = NCCRuntime(8)
        s = rt.stats_summary()
        assert s["rounds"] == 0
        rt.barrier()
        assert rt.stats_summary()["rounds"] > 0

    def test_repr(self):
        assert "NCCRuntime(n=8" in repr(NCCRuntime(8))


class TestSharedRandomnessWiring:
    def test_agreement_charged_through_network(self):
        rt = NCCRuntime(32, seed=1)
        before = rt.net.round_index
        rt.shared.hash_family("fresh", 4, 100)
        assert rt.net.round_index > before

    def test_agreement_free_when_disabled(self):
        rt = NCCRuntime(32, NCCConfig(seed=1, charge_hash_agreement=False))
        before = rt.net.round_index
        rt.shared.hash_family("fresh", 4, 100)
        assert rt.net.round_index == before
