"""Trial-table peeling: the Identification Algorithm's decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.kwise import hash_family
from repro.hashing.peeling import TrialTable, simulate_identification, trials_of

Q = 64
FAM = hash_family(5, 6, Q, seed=31)


class TestTrialTableBasics:
    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            TrialTable(0, FAM)

    def test_rejects_mismatched_hash_range(self):
        other = hash_family(3, 4, Q + 1, seed=1)
        with pytest.raises(ValueError):
            TrialTable(Q, other)

    def test_counts_accumulate(self):
        t = TrialTable(Q, FAM)
        t.add_local(12345)
        total = sum(t.local_count(i) for i in range(Q))
        assert total == len(trials_of(12345, FAM))

    def test_remote_bounds_checked(self):
        t = TrialTable(Q, FAM)
        with pytest.raises(IndexError):
            t.set_remote(Q, 1, 1)
        with pytest.raises(IndexError):
            t.accumulate_remote(-1, 1, 1)


class TestPeeling:
    def test_single_red_edge_recovered(self):
        res = simulate_identification([111], [], FAM, Q)
        assert res.complete
        assert res.identified == [111]

    def test_all_blue_recovers_nothing(self):
        res = simulate_identification([5, 6, 7], [5, 6, 7], FAM, Q)
        assert res.complete
        assert res.identified == []

    def test_mixed_case(self):
        candidates = list(range(100, 120))
        blue = candidates[:15]
        res = simulate_identification(candidates, blue, FAM, Q)
        assert res.complete
        assert sorted(res.identified) == candidates[15:]

    def test_many_reds_small_q_stalls(self):
        """With q too small for the red count, peeling must report failure
        rather than fabricate identifiers."""
        tiny_q = 4
        fam = hash_family(3, 4, tiny_q, seed=5)
        candidates = list(range(1, 40))
        res = simulate_identification(candidates, [], fam, tiny_q)
        assert not res.complete
        # Everything it did identify must be genuine.
        assert set(res.identified) <= set(candidates)

    def test_zero_identifier_never_produced(self):
        res = simulate_identification([1, 2, 3], [2], FAM, Q)
        assert 0 not in res.identified

    @given(
        st.sets(st.integers(min_value=1, max_value=10**6), min_size=0, max_size=25),
        st.data(),
    )
    @settings(max_examples=120)
    def test_identified_subset_of_reds_and_complete_means_all(self, cands, data):
        """Safety: peeling never claims a blue or unknown edge is red; on
        completion it found exactly the red set."""
        cands = sorted(cands)
        blue = set(data.draw(st.sets(st.sampled_from(cands), max_size=len(cands)))) if cands else set()
        red = [c for c in cands if c not in blue]
        res = simulate_identification(cands, sorted(blue), FAM, Q)
        assert set(res.identified) <= set(red)
        if res.complete:
            assert sorted(res.identified) == red

    def test_small_red_sets_reliably_recovered(self):
        """Lemma 4.2 regime: few red edges, q >> reds — always completes
        for these fixed seeds."""
        for base in range(20):
            cands = [base * 50 + i + 1 for i in range(12)]
            blue = cands[:9]
            res = simulate_identification(cands, blue, FAM, Q)
            assert res.complete, f"stalled at base={base}"
            assert sorted(res.identified) == cands[9:]
