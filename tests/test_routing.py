"""Butterfly routers: combining aggregation, tree recording, multicast."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Enforcement, NCCConfig, NCCNetwork
from repro.butterfly.routing import CombiningRouter, MulticastRouter
from repro.butterfly.topology import BFNode, ButterflyGrid
from repro.errors import ProtocolError


def make_net(n=16, lightweight=False):
    cfg = NCCConfig(
        seed=3,
        enforcement=Enforcement.STRICT,
        extras={"lightweight_sync": lightweight},
    )
    return NCCNetwork(n, cfg), ButterflyGrid(n)


def make_router(net, bf, *, record=False, combine=None):
    rng = random.Random(99)
    ranks = {}
    targets = {}

    def rank_of(g):
        if g not in ranks:
            ranks[g] = random.Random(f"r{g}").randrange(1 << 20)
        return ranks[g]

    def target_of(g):
        if g not in targets:
            targets[g] = random.Random(f"t{g}").randrange(bf.columns)
        return targets[g]

    return CombiningRouter(
        net,
        bf,
        rank_of=rank_of,
        target_col_of=target_of,
        combine=combine or (lambda a, b: a + b),
        record_trees=record,
    )


class TestCombiningRouter:
    def test_single_packet_reaches_target(self):
        net, bf = make_net()
        r = make_router(net, bf)
        r.inject(3, "g1", 5)
        res = r.run()
        assert res.results == {"g1": 5}

    def test_same_group_combines(self):
        net, bf = make_net()
        r = make_router(net, bf)
        for col, v in [(0, 1), (5, 2), (9, 4), (15, 8)]:
            r.inject(col, 7, v)
        res = r.run()
        assert res.results == {7: 15}

    def test_same_node_injections_combine_at_injection(self):
        net, bf = make_net()
        r = make_router(net, bf)
        r.inject(4, "g", 1)
        r.inject(4, "g", 10)
        res = r.run()
        assert res.results == {"g": 11}

    def test_many_groups_random_instance(self):
        net, bf = make_net(32)
        r = make_router(net, bf)
        rng = random.Random(5)
        expected: dict[int, int] = {}
        for _ in range(300):
            g = rng.randrange(40)
            col = rng.randrange(bf.columns)
            v = rng.randrange(100)
            r.inject(col, g, v)
            expected[g] = expected.get(g, 0) + v
        res = r.run()
        assert res.results == expected

    def test_run_twice_rejected(self):
        net, bf = make_net()
        r = make_router(net, bf)
        r.run()
        with pytest.raises(ProtocolError):
            r.run()
        with pytest.raises(ProtocolError):
            r.inject(0, "g", 1)

    def test_bad_column_rejected(self):
        net, bf = make_net()
        r = make_router(net, bf)
        with pytest.raises(ValueError):
            r.inject(bf.columns, "g", 1)

    def test_rounds_scale_with_depth_plus_load(self):
        net, bf = make_net(64)
        r = make_router(net, bf)
        for col in range(bf.columns):
            r.inject(col, col % 8, 1)
        res = r.run()
        # depth d=6 for data + ~d for tokens + constant slack
        assert res.rounds <= 6 * bf.d + 20

    def test_degenerate_n1(self):
        net, bf = make_net(1)
        r = make_router(net, bf)
        r.inject(0, "g", 3)
        r.inject(0, "g", 4)
        assert r.run().results == {"g": 7}

    def test_lightweight_rounds_close_to_full(self):
        def run(lightweight):
            net, bf = make_net(32, lightweight=lightweight)
            r = make_router(net, bf)
            rng = random.Random(7)
            for _ in range(100):
                r.inject(rng.randrange(bf.columns), rng.randrange(12), 1)
            return r.run().rounds

        full, light = run(False), run(True)
        assert abs(full - light) <= ButterflyGrid(32).d + 4

    def test_strict_capacity_respected(self):
        # The routing discipline must keep every node within O(log n)
        # messages per round even at high load (STRICT raises otherwise).
        net, bf = make_net(64)
        r = make_router(net, bf)
        rng = random.Random(11)
        for _ in range(1000):
            r.inject(rng.randrange(bf.columns), rng.randrange(50), 1)
        r.run()
        assert net.stats.violation_count == 0


class TestTreeRecording:
    def build(self, n=32, groups=6, members=40, seed=2):
        net, bf = make_net(n)
        r = make_router(net, bf, record=True, combine=lambda a, b: a)
        rng = random.Random(seed)
        member_cols: dict[int, dict[int, list[int]]] = {}
        for i in range(members):
            g = rng.randrange(groups)
            col = rng.randrange(bf.columns)
            r.inject(col, g, 1)
            r.trees.add_leaf_member(g, col, i)
            member_cols.setdefault(g, {}).setdefault(col, []).append(i)
        res = r.run()
        return net, bf, r.trees, res, member_cols

    def test_roots_recorded(self):
        net, bf, trees, res, _ = self.build()
        for g in res.results:
            assert trees.root[g].level == bf.d

    def test_tree_edges_connect_root_to_leaves(self):
        net, bf, trees, res, member_cols = self.build()
        for g, cols in member_cols.items():
            # walk down from the root along recorded children; must cover
            # every leaf column of the group.
            reached = set()
            stack = [trees.root[g]]
            while stack:
                node = stack.pop()
                if node.level == 0:
                    reached.add(node.column)
                stack.extend(trees.children.get(g, {}).get(node, ()))
            assert set(cols) <= reached

    def test_congestion_positive_and_bounded(self):
        net, bf, trees, res, _ = self.build()
        c = trees.congestion()
        assert 1 <= c <= 6  # at most #groups trees share a node

    def test_member_load(self):
        net, bf, trees, *_ = self.build()
        assert trees.member_load() == 1  # each member injected once


class TestMulticastRouter:
    def roundtrip(self, n=32, groups=5, members=30, seed=4):
        net, bf = make_net(n)
        setup = make_router(net, bf, record=True, combine=lambda a, b: a)
        rng = random.Random(seed)
        membership: dict[int, list[int]] = {}
        for i in range(members):
            g = rng.randrange(groups)
            col = rng.randrange(bf.columns)
            setup.inject(col, g, 1)
            setup.trees.add_leaf_member(g, col, i)
            membership.setdefault(g, []).append(i)
        setup.run()
        trees = setup.trees

        mc = MulticastRouter(net, bf, trees, rank_of=lambda g: g)
        payloads = {g: 100 + g for g in membership}
        res = mc.run(payloads)
        return net, bf, trees, membership, payloads, res

    def test_every_leaf_receives_its_groups(self):
        net, bf, trees, membership, payloads, res = self.roundtrip()
        for g, members in membership.items():
            for col, mlist in trees.leaf_members[g].items():
                assert res.results[col][g] == payloads[g]

    def test_unknown_group_rejected(self):
        net, bf, trees, *_ = self.roundtrip()
        mc = MulticastRouter(net, bf, trees, rank_of=lambda g: g)
        with pytest.raises(ProtocolError):
            mc.run({"no-such-group": 1})

    def test_strict_capacity_respected(self):
        net, *_ = self.roundtrip(n=64, groups=20, members=300)
        assert net.stats.violation_count == 0

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n, seed):
        net, bf, trees, membership, payloads, res = self.roundtrip(
            n=n, groups=4, members=12, seed=seed
        )
        delivered = {
            g
            for col, got in res.results.items()
            for g in got
        }
        assert delivered == set(membership)
