"""Seeded randomized property tests for payload bit accounting.

Properties certified over randomized payload shapes:

* non-negativity — every sizeable payload costs >= 0 bits (and scalars > 0);
* container additivity — a tuple/list/frozenset costs exactly the sum of
  its parts (structure is protocol, not wire format);
* memoized == unmemoized — :func:`payload_bits_memoized` agrees with
  :func:`payload_bits` on every input, on repeat (cache-hit) calls, and
  across cache clears, including the ``IntEnum`` and ``size_bits()``
  fallback branches that the cache must *not* capture.
"""

from __future__ import annotations

import enum
import random

import pytest

from repro.ncc import message
from repro.ncc.message import (
    clear_payload_bits_memo,
    payload_bits,
    payload_bits_memoized,
)


class Color(enum.IntEnum):
    RED = 0
    GREEN = 5
    BLUE = 200


class Sketch:
    """Stand-in for parity sketches: sizes itself via ``size_bits()``."""

    def __init__(self, bits: int):
        self._bits = bits

    def size_bits(self) -> int:
        return self._bits

    def __eq__(self, other: object) -> bool:  # equality does NOT pin size
        return isinstance(other, Sketch)

    def __hash__(self) -> int:
        return 17


def random_scalar(rng: random.Random):
    kind = rng.randrange(8)
    if kind == 0:
        return rng.randint(-(1 << 40), 1 << 40)
    if kind == 1:
        return rng.choice([True, False])
    if kind == 2:
        return None
    if kind == 3:
        return rng.random() * 1000
    if kind == 4:
        return "".join(rng.choice("abcdef") for _ in range(rng.randrange(0, 7)))
    if kind == 5:
        return "".join(rng.choice("abcdef") for _ in range(9, 20))
    if kind == 6:
        return rng.choice(list(Color))
    return Sketch(rng.randrange(1, 64))


def random_payload(rng: random.Random, depth: int = 0):
    if depth < 3 and rng.random() < 0.4:
        parts = [random_payload(rng, depth + 1) for _ in range(rng.randrange(0, 5))]
        kind = rng.randrange(3)
        if kind == 0:
            return tuple(parts)
        if kind == 1:
            return list(parts)
        try:
            return frozenset(parts)
        except TypeError:  # unhashable part (list inside)
            return tuple(parts)
    return random_scalar(rng)


@pytest.mark.parametrize("seed", range(8))
class TestRandomizedProperties:
    def test_non_negative(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            assert payload_bits(random_payload(rng)) >= 0

    def test_container_additivity(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            parts = [random_payload(rng) for _ in range(rng.randrange(0, 6))]
            total = sum(payload_bits(p) for p in parts)
            assert payload_bits(tuple(parts)) == total
            assert payload_bits(list(parts)) == total
            try:
                fs = frozenset(parts)
            except TypeError:
                continue
            # frozensets deduplicate, so compare against their own parts
            assert payload_bits(fs) == sum(payload_bits(p) for p in fs)

    def test_memoized_equals_unmemoized(self, seed):
        rng = random.Random(seed)
        clear_payload_bits_memo()
        payloads = [random_payload(rng) for _ in range(400)]
        for p in payloads:
            assert payload_bits_memoized(p) == payload_bits(p)
        # Second pass hits the cache for the tuple-shaped payloads.
        for p in payloads:
            assert payload_bits_memoized(p) == payload_bits(p)
        clear_payload_bits_memo()
        for p in payloads:
            assert payload_bits_memoized(p) == payload_bits(p)


class TestScalarRules:
    def test_scalar_positive(self):
        for p in (0, 1, -1, True, False, None, 0.0, "", "tag", 1 << 60):
            assert payload_bits(p) >= 1

    def test_int_rules(self):
        assert payload_bits(0) == 1
        assert payload_bits(1) == 1
        assert payload_bits(-1) == 2  # sign bit
        assert payload_bits(255) == 8

    def test_string_rules(self):
        assert payload_bits("tag") == 4  # constant-size protocol alphabet
        assert payload_bits("x" * 9) == 72  # long strings pay per char


class TestFallbackBranches:
    def test_intenum_uses_bit_length(self):
        assert payload_bits(Color.RED) == 1
        assert payload_bits(Color.GREEN) == 3
        assert payload_bits(Color.BLUE) == 8
        for c in Color:
            assert payload_bits_memoized(c) == payload_bits(c)

    def test_size_bits_protocol(self):
        assert payload_bits(Sketch(48)) == 48
        assert payload_bits_memoized(Sketch(48)) == 48

    def test_unsizeable_rejected(self):
        with pytest.raises(TypeError):
            payload_bits(object())
        with pytest.raises(TypeError):
            payload_bits_memoized(object())


class TestNumpyScalars:
    """Regression: numpy scalars used to raise ``TypeError`` in both sizers.

    They must size exactly like their Python counterparts (a payload read
    back off a typed column and re-submitted is a numpy scalar), while
    staying out of the value-keyed memo (``np.int64(1) == 1 == 1.0``).
    """

    np = pytest.importorskip("numpy")

    INT_DTYPES = ("int8", "int16", "int32", "int64",
                  "uint8", "uint16", "uint32", "uint64")

    def test_integer_scalars_size_like_python_ints(self):
        np = self.np
        rng = random.Random(11)
        for name in self.INT_DTYPES:
            dt = np.dtype(name)
            info = np.iinfo(dt)
            samples = {0, 1, info.min, info.max}
            samples.update(
                rng.randint(info.min, info.max) for _ in range(50)
            )
            for v in samples:
                s = dt.type(v)
                assert payload_bits(s) == payload_bits(int(s)), (name, v)
                assert payload_bits_memoized(s) == payload_bits(int(s))

    def test_bool_float_str_scalars(self):
        np = self.np
        assert payload_bits(np.bool_(True)) == payload_bits(True) == 1
        assert payload_bits(np.bool_(False)) == 1
        assert payload_bits(np.float64(2.5)) == payload_bits(2.5) == 32
        assert payload_bits(np.float32(0.0)) == 32
        assert payload_bits(np.str_("tag")) == payload_bits("tag") == 4
        assert payload_bits(np.str_("x" * 9)) == payload_bits("x" * 9) == 72

    def test_structured_scalar_sizes_like_tuple(self):
        np = self.np
        dt = np.dtype([("tag", "U1"), ("g", "i8"), ("val", "i8")])
        arr = np.array([("I", 7, -300)], dtype=dt)
        assert payload_bits(arr[0]) == payload_bits(("I", 7, -300))
        assert payload_bits_memoized(arr[0]) == payload_bits(("I", 7, -300))

    def test_scalars_inside_containers(self):
        np = self.np
        p = (np.int64(255), [np.bool_(True), np.float64(1.0)])
        assert payload_bits(p) == payload_bits((255, [True, 1.0]))

    def test_numpy_scalars_stay_out_of_the_memo(self):
        """np.int64(1) == 1 == 1.0 == True: caching one would serve its size
        for the others."""
        np = self.np
        clear_payload_bits_memo()
        assert payload_bits_memoized(np.float64(1.0)) == 32
        assert payload_bits_memoized(np.int64(1)) == 1
        assert payload_bits_memoized(1) == 1
        assert payload_bits_memoized(1.0) == 32
        assert all(
            not isinstance(k, self.np.generic) for k in message._BITS_MEMO
        )

    def test_typed_column_roundtrip_accounts_identically(self):
        """Boxing a typed column and re-sizing each element reproduces the
        vectorized bits exactly, for scalar and structured dtypes."""
        np = self.np
        from repro.ncc.message import typed_payload_bits

        rng = random.Random(3)
        ints = np.asarray(
            [rng.randint(-(2**63), 2**63 - 1) for _ in range(100)]
            + [0, 1, -1, -(2**63), 2**63 - 1],
            dtype=np.int64,
        )
        assert typed_payload_bits(ints).tolist() == [
            payload_bits(v) for v in ints.tolist()
        ]
        # Re-submitting the unboxed numpy scalars sizes the same way too.
        assert [payload_bits(v) for v in ints] == [
            payload_bits(v) for v in ints.tolist()
        ]
        dt = np.dtype([("tag", "U12"), ("g", "i8"), ("ok", "?"), ("w", "f4")])
        rows = [
            ("", 0, False, 0.0),
            ("shortstr", -1, True, -2.5),
            ("longer-tag!!", 2**62, False, 7.0),
        ]
        arr = np.array(rows, dtype=dt)
        assert typed_payload_bits(arr).tolist() == [
            payload_bits(r) for r in arr.tolist()
        ]
        assert [payload_bits(s) for s in arr] == typed_payload_bits(arr).tolist()


class TestMemoSafety:
    def test_equal_value_different_type_not_conflated(self):
        """1 == 1.0 == True, but an int is 1 bit and a float is 32: the
        cache must never serve one type's size for another's."""
        clear_payload_bits_memo()
        assert payload_bits_memoized((1,)) == 1
        assert payload_bits_memoized((1.0,)) == 32  # would be 1 if conflated
        assert payload_bits_memoized((True,)) == 1

    def test_size_bits_objects_not_cached(self):
        """Two equal Sketches with different sizes must size independently
        even inside tuples (equality does not pin size for such objects)."""
        clear_payload_bits_memo()
        assert payload_bits_memoized((Sketch(8),)) == 8
        assert payload_bits_memoized((Sketch(32),)) == 32

    def test_unhashable_tuple_falls_through(self):
        clear_payload_bits_memo()
        p = (1, [2, 3])
        assert payload_bits_memoized(p) == payload_bits(p)

    def test_cache_bounded(self):
        clear_payload_bits_memo()
        for i in range(message._BITS_MEMO_LIMIT + 50):
            payload_bits_memoized((i, i + 1))
        assert len(message._BITS_MEMO) <= message._BITS_MEMO_LIMIT
        clear_payload_bits_memo()
