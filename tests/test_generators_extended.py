"""Extended generator families: bipartite, expanders, series-parallel."""

import pytest

from repro.graphs import arboricity, generators, properties


class TestBipartite:
    def test_structure(self):
        g = generators.random_bipartite(8, 12, 0.5, seed=1)
        assert g.n == 20
        # no edge inside either side
        for u in range(8):
            assert all(v >= 8 for v in g.neighbors(u))
        for u in range(8, 20):
            assert all(v < 8 for v in g.neighbors(u))

    def test_two_colorable(self):
        from repro.baselines.sequential import greedy_coloring, is_proper_coloring

        g = generators.random_bipartite(10, 10, 0.4, seed=2)
        colors = {u: 0 if u < 10 else 1 for u in range(20)}
        assert is_proper_coloring(g, colors)

    def test_distributed_algorithms_handle_bipartite(self):
        from repro.algorithms import MISAlgorithm
        from repro.baselines.sequential import is_maximal_independent_set
        from tests.conftest import make_runtime

        g = generators.random_bipartite(10, 14, 0.25, seed=3)
        rt = make_runtime(24, seed=4)
        res = MISAlgorithm(rt, g).run()
        assert is_maximal_independent_set(g, res.members)


class TestRingOfChords:
    def test_contains_cycle(self):
        g = generators.ring_of_chords(20, 2, seed=1)
        for i in range(20):
            assert g.has_edge(i, (i + 1) % 20)

    def test_small_diameter(self):
        g = generators.ring_of_chords(128, 2, seed=2)
        assert properties.diameter(g) <= 10  # expander-ish vs 64 for the ring

    def test_arboricity_bounded(self):
        # True arboricity ≤ chords+2 (orient chords at their initiator, the
        # ring contributes 2); the density lower bound must respect that and
        # the greedy upper bound stays within its 2x slack.
        g = generators.ring_of_chords(64, 3, seed=3)
        lo, hi = arboricity.arboricity_bounds(g)
        assert lo <= 3 + 2
        assert hi <= 2 * (3 + 2)

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            generators.ring_of_chords(2, 1)


class TestSeriesParallel:
    def test_size_and_connectivity(self):
        g = generators.series_parallel(30, seed=1)
        assert g.n == 30
        assert properties.is_connected(g)

    def test_treewidth_two_arboricity(self):
        for seed in range(4):
            g = generators.series_parallel(40, seed=seed)
            lo, hi = arboricity.arboricity_bounds(g)
            assert hi <= 2

    def test_orientation_outdegree_small(self):
        from repro.algorithms import OrientationAlgorithm
        from tests.conftest import make_runtime

        g = generators.series_parallel(32, seed=5)
        rt = make_runtime(32, seed=6)
        ori = OrientationAlgorithm(rt, g).run()
        assert ori.max_outdegree <= 8  # 4a with a <= 2

    def test_deterministic(self):
        assert (
            generators.series_parallel(25, seed=7).edges()
            == generators.series_parallel(25, seed=7).edges()
        )

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            generators.series_parallel(1)
