"""Sharded engine: shard-count invisibility, crash robustness, wiring.

The sharded engine's contract is stronger than "correct": for every
shard count it must be *byte-identical* to the single-process batched
engine — same inboxes (content, list order, dict insertion order), same
statistics, same violation-ledger order, same DROP draws — while
constructing zero ``Message`` objects on clean typed rounds.  This
module pins that contract three ways:

* a shards=1 ≡ shards=k ≡ batched grid over algorithms × sizes × seeds,
  plus overloaded typed rounds in all three enforcement modes;
* crash robustness via the ``REPRO_SHARD_CHAOS`` injection hook: a
  SIGKILLed worker requeues its block and journals an incident, a
  poisonous block degrades to the parent, and a fully-dead pool disables
  the engine — all without changing a byte of output;
* the configuration surface: ``NCCConfig.shards``, ``RunSpec.shards``
  (serialized only when set), ``Session`` canonicalization, the sweep
  grid's scalar ``engine_shards``, and the CLI validator.

The broad differential coverage (every algorithm and primitive in every
mode) lives in ``tests/test_engine_parity.py``; this module owns what is
specific to sharding.
"""

from __future__ import annotations

import signal

import pytest

np = pytest.importorskip("numpy")

from repro import Enforcement, NCCConfig, NCCRuntime, ReproError
from repro.api.schema import RunSpec
from repro.api.session import Session, sweep_grid
from repro.errors import ConfigurationError
from repro.ncc.message import (
    BatchBuilder,
    InboxBatch,
    message_construction_count,
)
from repro.ncc.network import NCCNetwork
from repro.ncc.sharded import CUTOFF_EXTRA, ShardedEngine
from repro.ncc.sharded import workers as shard_workers
from repro.registry import get_algorithm

MODES = tuple(Enforcement)
MODE_IDS = [m.value for m in MODES]


def _sharded_cfg(*, shards: int, mode: Enforcement = Enforcement.COUNT,
                 seed: int = 1, **extras) -> NCCConfig:
    """A sharded config with the round cutoff forced to 1 so even tiny
    test rounds take the real distributed block shuffle."""
    return NCCConfig(
        engine="sharded", shards=shards, seed=seed, enforcement=mode,
        extras={CUTOFF_EXTRA: 1, **extras},
    )


def _batched_cfg(*, mode: Enforcement = Enforcement.COUNT,
                 seed: int = 1, **extras) -> NCCConfig:
    return NCCConfig(engine="batched", seed=seed, enforcement=mode, extras=extras)


def _typed_round(n: int, *, salt: int = 0) -> BatchBuilder:
    """One clean typed round: every node sends 3 int64 messages along
    shifted permutations (both per-sender and per-receiver loads stay at
    3, far below capacity)."""
    out = BatchBuilder(kind="t", dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), 3)
    shift = np.tile(np.arange(1, 4, dtype=np.int64), n)
    dst = (src + shift + salt) % n
    out.add_arrays(src, dst, src * 1000 + shift)
    return out


@pytest.fixture
def fresh_shard_pool():
    """Chaos tests mutate the process-wide shard pool (killed workers,
    inherited chaos env in forked children); give them a pristine pool
    and tear the mutated one down afterwards."""
    shard_workers.close_pool()
    yield
    shard_workers.close_pool()


# ----------------------------------------------------------------------
# Shard-count invisibility
# ----------------------------------------------------------------------
@pytest.mark.engine("reference")  # builds every engine itself
class TestShardCountInvisible:
    """shards=1 ≡ shards=k ≡ single-process batched, byte for byte."""

    @pytest.mark.parametrize("seed", (3, 11))
    @pytest.mark.parametrize("n", (24, 40))
    @pytest.mark.parametrize("name", ("mst", "components", "bfs"))
    def test_algorithm_grid(self, name, n, seed):
        spec = get_algorithm(name)
        outcomes = {}
        for label, cfg in (
            ("batched", _batched_cfg(seed=7, lightweight_sync=True)),
            ("shards-1", _sharded_cfg(shards=1, seed=7, lightweight_sync=True)),
            ("shards-4", _sharded_cfg(shards=4, seed=7, lightweight_sync=True)),
        ):
            rt = NCCRuntime(n, cfg)
            result = spec.parity_run(rt, n=n, a=2, seed=seed)
            outcomes[label] = {
                "result": result,
                "rounds": rt.net.round_index,
                "stats": rt.net.stats.comparable(),
            }
        base = outcomes["batched"]
        for label, got in outcomes.items():
            assert got == base, f"{label} diverged from batched"

    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_overloaded_typed_round_all_modes(self, mode):
        """Receive overload through the sharded merge: the inherited
        canonical receive walk must keep the ledger order, DROP draws and
        STRICT raise identical to batched, for any shard count."""
        n = 64
        outcomes = {}
        for label, cfg in (
            ("batched", _batched_cfg(mode=mode)),
            ("shards-1", _sharded_cfg(shards=1, mode=mode)),
            ("shards-3", _sharded_cfg(shards=3, mode=mode)),
        ):
            net = NCCNetwork(n, cfg)
            src = np.arange(net.capacity + 10, dtype=np.int64)
            out = BatchBuilder(kind="hot", dtype=np.int64)
            out.add_arrays(src, np.zeros_like(src), src * 3)
            try:
                inbox = net.exchange(out)
                outcomes[label] = (
                    "ok",
                    [(d, [m.payload for m in box]) for d, box in inbox.items()],
                    net.stats.comparable(),
                )
            except ReproError as e:
                outcomes[label] = (type(e).__name__, str(e), net.stats.comparable())
        base = outcomes["batched"]
        for label, got in outcomes.items():
            assert got == base, f"{label} diverged from batched"

    def test_clean_typed_round_distributed_and_messageless(self):
        """The headline property: a clean typed sharded round really takes
        the worker-pool path and constructs zero Message objects, while
        delivering inboxes byte-identical to batched in both dict-order
        directions."""
        n = 96
        net = NCCNetwork(n, _sharded_cfg(shards=4))
        before = message_construction_count()
        inbox = net.exchange(_typed_round(n))
        assert message_construction_count() == before, (
            "a clean typed sharded round must not construct Message objects"
        )
        eng = net.engine
        assert isinstance(eng, ShardedEngine)
        assert eng._pool is not None, "the distributed delivery never ran"
        assert not eng._disabled
        assert eng.incidents == []
        assert all(type(box) is InboxBatch for box in inbox.values())

        ref = NCCNetwork(n, _batched_cfg())
        expected = ref.exchange(_typed_round(n))
        assert list(inbox.keys()) == list(expected.keys())
        assert inbox == expected
        assert expected == inbox
        assert net.stats.comparable() == ref.stats.comparable()

    def test_empty_shards_are_fine(self):
        """More shards than distinct destinations: some blocks are empty
        and simply absent from the shuffle; output unchanged."""
        n = 48
        net = NCCNetwork(n, _sharded_cfg(shards=5))
        out = BatchBuilder(kind="t", dtype=np.int64)
        src = np.arange(n, dtype=np.int64)
        out.add_arrays(src, np.zeros_like(src) + 1, src)  # all traffic to node 1
        inbox = net.exchange(out)
        ref = NCCNetwork(n, _batched_cfg())
        out2 = BatchBuilder(kind="t", dtype=np.int64)
        out2.add_arrays(src, np.zeros_like(src) + 1, src)
        assert inbox == ref.exchange(out2)
        assert net.stats.comparable() == ref.stats.comparable()

    def test_no_shared_memory_degrades_to_batched(self, monkeypatch):
        """Hosts without POSIX shared memory disable the engine; it then
        inherits the single-process delivery wholesale — same bytes."""
        import repro.api.pool as pool_mod

        monkeypatch.setattr(pool_mod, "shared_memory_available", lambda: False)
        n = 64
        net = NCCNetwork(n, _sharded_cfg(shards=3))
        inbox = net.exchange(_typed_round(n))
        eng = net.engine
        assert eng._disabled
        assert eng._pool is None
        ref = NCCNetwork(n, _batched_cfg())
        assert inbox == ref.exchange(_typed_round(n))
        assert net.stats.comparable() == ref.stats.comparable()


# ----------------------------------------------------------------------
# Crash robustness (REPRO_SHARD_CHAOS)
# ----------------------------------------------------------------------
@pytest.mark.engine("reference")  # builds every engine itself
class TestCrashRobustness:
    N = 96

    def _run_against_reference(self, net):
        """Exchange two typed rounds on ``net`` and on a fresh batched
        reference; assert byte-identical delivery and stats."""
        ref = NCCNetwork(self.N, _batched_cfg())
        for salt in (0, 1):
            inbox = net.exchange(_typed_round(self.N, salt=salt))
            expected = ref.exchange(_typed_round(self.N, salt=salt))
            assert list(inbox.keys()) == list(expected.keys()), f"salt={salt}"
            assert inbox == expected, f"salt={salt}"
        assert net.stats.comparable() == ref.stats.comparable()

    def test_sigkilled_worker_requeues_and_journals(
        self, tmp_path, monkeypatch, fresh_shard_pool
    ):
        """SIGKILL the worker that picks up shard 1's block, exactly once:
        the round completes byte-identically, the crash lands on the
        engine's incident journal, and the pool keeps running on the
        survivors."""
        flag = tmp_path / "crash-once"
        monkeypatch.setenv(shard_workers.CHAOS_ENV, f"1:{flag}")
        net = NCCNetwork(self.N, _sharded_cfg(shards=3))
        self._run_against_reference(net)
        eng = net.engine
        assert flag.exists(), "the chaos hook never fired"
        assert [i["kind"] for i in eng.incidents] == ["shard-worker-crash"]
        incident = eng.incidents[0]
        assert incident["block"] == 1
        assert incident["exitcode"] == -signal.SIGKILL
        assert incident["requeued"] is True
        assert incident["attempt"] == 1
        assert incident["workers_left"] == 2
        assert not eng._disabled
        assert eng._pool.alive_workers == 2

    def test_poisonous_block_falls_back_to_parent(
        self, monkeypatch, fresh_shard_pool
    ):
        """An empty flagfile path kills *every* worker that touches shard
        1: the block exhausts its requeue budget, the parent computes it
        through the same kernel, the dead pool disables the engine, and
        later rounds inherit the batched delivery — output identical
        throughout."""
        monkeypatch.setenv(shard_workers.CHAOS_ENV, "1:")
        net = NCCNetwork(self.N, _sharded_cfg(shards=3))
        self._run_against_reference(net)
        eng = net.engine
        assert eng._disabled, "a fully-dead pool must disable the engine"
        kinds = [i["kind"] for i in eng.incidents]
        assert kinds == ["shard-worker-crash"] * 3
        last = eng.incidents[-1]
        assert last["requeued"] is False  # budget exhausted: parent fallback
        assert last["workers_left"] == 0
        assert eng._pool.alive_workers == 0


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
class TestShardsWiring:
    def test_ncc_config_validates_shards(self):
        assert NCCConfig(shards=0).shards == 0  # 0 = auto
        assert NCCConfig(shards=4).shards == 4
        for bad in (-1, True, "2", 1.5):
            with pytest.raises(ConfigurationError):
                NCCConfig(shards=bad)

    def test_engine_clamps_shard_count(self):
        net = NCCNetwork(4, _sharded_cfg(shards=64))
        assert net.engine.shards == 4  # never more shards than nodes

    def test_runspec_validates_shards(self):
        assert RunSpec("mst", n=16, shards=3).shards == 3
        for bad in (0, -1, True, "2"):
            with pytest.raises(ConfigurationError):
                RunSpec("mst", n=16, shards=bad)

    def test_runspec_shards_serialized_only_when_set(self):
        bare = RunSpec("mst", n=16)
        assert "shards" not in bare.to_dict()
        assert RunSpec.from_dict(bare.to_dict()) == bare
        sharded = RunSpec("mst", n=16, shards=3)
        assert sharded.to_dict()["shards"] == 3
        assert RunSpec.from_dict(sharded.to_dict()) == sharded
        # The performance knob must not fork the workload identity axes.
        assert sharded.to_dict()["n"] == bare.to_dict()["n"]

    def test_session_canonical_implies_sharded_engine(self):
        with Session() as s:
            c = s.canonical(RunSpec("mst", n=16, shards=2))
            assert c.engine == "sharded"
            assert c.shards == 2
            cfg = s.config_for(c)
            assert cfg.engine == "sharded"
            assert cfg.shards == 2

    def test_session_canonical_rejects_engine_contradiction(self):
        with Session() as s:
            with pytest.raises(ConfigurationError, match="shards"):
                s.canonical(RunSpec("mst", n=16, engine="batched", shards=2))

    def test_sweep_grid_engine_shards_is_a_scalar(self):
        specs = sweep_grid(["mst"], [16, 32], seeds=[0, 1], engine_shards=2)
        assert len(specs) == 4
        assert all(sp.shards == 2 for sp in specs)
        bare = sweep_grid(["mst"], [16], seeds=[0])
        assert all(sp.shards is None for sp in bare)

    def test_cli_shards_validator(self):
        from argparse import ArgumentTypeError

        from repro.cli import _shards_arg

        assert _shards_arg("3") == 3
        for bad in ("0", "-2", "banana", "1.5"):
            with pytest.raises(ArgumentTypeError):
                _shards_arg(bad)
