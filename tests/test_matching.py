"""Distributed maximal matching: validity and behaviour."""

import pytest

from repro.algorithms import MatchingAlgorithm
from repro.baselines.sequential import is_matching, is_maximal_matching
from repro.graphs import generators
from tests.conftest import make_runtime


def run_matching(g, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = MatchingAlgorithm(rt, g).run()
    return rt, res


class TestValidity:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.path(16),
            lambda: generators.cycle(16),
            lambda: generators.cycle(17),
            lambda: generators.star(18),
            lambda: generators.grid(4, 5),
            lambda: generators.random_tree(24, seed=1),
            lambda: generators.forest_union(24, 3, seed=2),
            lambda: generators.complete(12),
            lambda: generators.gnp(22, 0.2, seed=3),
        ],
        ids=[
            "path", "even-cycle", "odd-cycle", "star", "grid", "tree",
            "forest3", "complete", "gnp",
        ],
    )
    def test_maximal_matching(self, maker):
        g = maker()
        rt, res = run_matching(g)
        assert is_maximal_matching(g, res.edges)
        assert rt.net.stats.violation_count == 0

    def test_star_matches_exactly_one_edge(self):
        g = generators.star(16)
        rt, res = run_matching(g)
        assert len(res.edges) == 1
        assert 0 in next(iter(res.edges))

    def test_perfect_on_even_path(self):
        g = generators.path(8)
        rt, res = run_matching(g)
        # maximal on a path covers at least 1/2 of a maximum matching
        assert len(res.edges) >= 2
        assert is_matching(g, res.edges)

    def test_empty_graph(self):
        from repro import InputGraph

        g = InputGraph(8, [])
        rt, res = run_matching(g)
        assert res.edges == set()

    def test_single_edge(self):
        from repro import InputGraph

        g = InputGraph(6, [(2, 4)])
        rt, res = run_matching(g)
        assert res.edges == {(2, 4)}

    def test_disconnected(self):
        g = generators.disjoint_cliques(16, 4)
        rt, res = run_matching(g)
        assert is_maximal_matching(g, res.edges)
        assert len(res.edges) == 8  # perfect within each K4


class TestBehaviour:
    def test_deterministic(self):
        g = generators.forest_union(20, 2, seed=4)
        _, a = run_matching(g, seed=5)
        _, b = run_matching(g, seed=5)
        assert a.edges == b.edges
        assert a.rounds == b.rounds

    def test_half_approximation(self):
        """Any maximal matching is a 1/2-approximation of maximum."""
        import networkx as nx

        g = generators.gnp(20, 0.25, seed=6)
        _, res = run_matching(g)
        maximum = len(nx.max_weight_matching(g.to_networkx(), maxcardinality=True))
        assert len(res.edges) >= maximum / 2

    def test_phase_count_logarithmic(self):
        g = generators.forest_union(64, 2, seed=7)
        rt, res = run_matching(g, lightweight_sync=True)
        assert res.phases <= 8 * 6 + 16

    def test_size_mismatch_rejected(self):
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            MatchingAlgorithm(rt, generators.path(4))
