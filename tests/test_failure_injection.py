"""Failure injection: DROP semantics, undersized capacities, ledger growth.

These tests exercise the *model's* failure modes deliberately: the point is
that the engine detects and reports pressure (violations, drops) instead of
silently corrupting results.
"""

import pytest

from repro import CapacityError, Enforcement, NCCConfig, NCCNetwork, NCCRuntime
from repro.ncc.message import Message
from repro.primitives import SUM, AggregationProblem


class TestDropSemantics:
    def test_drop_loses_information(self):
        """Flooding one node beyond capacity in DROP mode loses messages —
        and the ledger + dropped counter say so."""
        cfg = NCCConfig(seed=1, enforcement=Enforcement.DROP)
        nw = NCCNetwork(64, cfg)
        msgs = [Message(s, 0, ("v", s)) for s in range(50)]
        inbox = nw.exchange(msgs)
        assert len(inbox[0]) == nw.capacity < 50
        assert nw.stats.dropped == 50 - nw.capacity
        assert nw.stats.violation_count >= 1

    def test_drop_mode_aggregation_may_degrade_but_reports(self):
        """An aggregation under absurdly tight capacity still terminates;
        the violation ledger shows the pressure."""
        cfg = NCCConfig(
            seed=1,
            capacity_multiplier=0.5,
            enforcement=Enforcement.COUNT,
        )
        rt = NCCRuntime(32, cfg)
        prob = AggregationProblem(
            memberships={u: {0: 1} for u in range(32)},
            targets={0: 0},
            fn=SUM,
        )
        out = rt.aggregation(prob)
        # COUNT mode delivers everything, so the answer is right...
        assert out.values[0] == 32
        # ...but the run could not have happened in the real model:
        assert rt.net.stats.violation_count > 0

    def test_strict_mode_fails_fast_under_tight_capacity(self):
        cfg = NCCConfig(
            seed=1,
            capacity_multiplier=0.25,
            enforcement=Enforcement.STRICT,
        )
        rt = NCCRuntime(64, cfg)
        prob = AggregationProblem(
            memberships={u: {u % 2: u} for u in range(64)},
            targets={0: 0, 1: 1},
            fn=SUM,
        )
        with pytest.raises(CapacityError):
            rt.aggregation(prob)


class TestLedgerForensics:
    def test_violations_carry_context(self):
        cfg = NCCConfig(seed=1, enforcement=Enforcement.COUNT)
        nw = NCCNetwork(64, cfg)
        nw.exchange([Message(s, 7, "x") for s in range(nw.capacity + 2)])
        v = nw.stats.violations[0]
        assert v.node == 7
        assert v.kind == "recv"
        assert v.round_index == 0
        assert v.capacity == nw.capacity

    def test_clean_run_has_empty_ledger(self):
        rt = NCCRuntime(32, NCCConfig(seed=1, enforcement=Enforcement.COUNT))
        rt.aggregate_and_broadcast({u: 1 for u in range(32)}, SUM)
        assert rt.net.stats.violations == []
        assert rt.net.stats.dropped == 0
