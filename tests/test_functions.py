"""Distributive aggregate functions: algebraic laws."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.functions import (
    MAX,
    MIN,
    SUM,
    XOR,
    Aggregate,
    first_wins,
    min_by_key,
    tuple_of,
    xor_count,
)

BASIC = [SUM, MIN, MAX, XOR]


class TestBasicAggregates:
    @pytest.mark.parametrize("agg", BASIC, ids=lambda a: a.name)
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_reduce_matches_python(self, agg, xs):
        expected = {
            "SUM": sum(xs),
            "MIN": min(xs),
            "MAX": max(xs),
            "XOR": _xor(xs),
        }[agg.name]
        assert agg.reduce(xs) == expected

    @pytest.mark.parametrize("agg", BASIC, ids=lambda a: a.name)
    @given(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
    )
    @settings(max_examples=60)
    def test_associative_commutative(self, agg, a, b, c):
        assert agg(a, b) == agg(b, a)
        assert agg(agg(a, b), c) == agg(a, agg(b, c))

    def test_reduce_empty_is_none(self):
        assert SUM.reduce([]) is None

    def test_callable_shorthand(self):
        assert SUM(2, 3) == 5


class TestDistributivity:
    """The defining property (Section 2.1): f(S) = g(f(S₁), f(S₂))."""

    @pytest.mark.parametrize("agg", BASIC, ids=lambda a: a.name)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=20),
        st.data(),
    )
    @settings(max_examples=60)
    def test_partition_invariance(self, agg, xs, data):
        cut = data.draw(st.integers(min_value=1, max_value=len(xs) - 1))
        left, right = xs[:cut], xs[cut:]
        assert agg(agg.reduce(left), agg.reduce(right)) == agg.reduce(xs)


class TestCompositeAggregates:
    def test_xor_count(self):
        assert xor_count((0b1010, 1), (0b0110, 2)) == (0b1100, 3)

    def test_min_by_key_keeps_smallest(self):
        m = min_by_key()
        assert m((1, "a"), (2, "b")) == (1, "a")
        assert m((2, "b"), (1, "a")) == (1, "a")

    def test_min_by_key_tie_breaks_deterministically(self):
        m = min_by_key()
        assert m((1, "a"), (1, "b")) == (1, "a")

    def test_tuple_of(self):
        t = tuple_of(SUM, MIN, MAX)
        assert t((1, 5, 2), (10, 3, 7)) == (11, 3, 7)

    def test_tuple_of_arity_checked(self):
        t = tuple_of(SUM, MIN)
        with pytest.raises(ValueError):
            t((1,), (2, 3))

    def test_first_wins(self):
        f = first_wins()
        assert f("a", "b") == "a"

    def test_custom_aggregate(self):
        gcd = Aggregate("GCD", lambda a, b: _gcd(a, b))
        assert gcd.reduce([12, 18, 24]) == 6


def _xor(xs):
    acc = 0
    for x in xs:
        acc ^= x
    return acc


def _gcd(a, b):
    while b:
        a, b = b, a % b
    return a
