"""Message payload bit accounting, batch columns, and the batch builder."""

import pytest

from repro.hashing.sketches import ParitySketch
from repro.ncc.message import (
    BatchBuilder,
    BuilderBatches,
    InboxBatch,
    Message,
    MessageBatch,
    items_of,
    message_construction_count,
    payload_bits,
    payloads_of,
    srcs_of,
)


class TestPayloadBits:
    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_ints(self):
        assert payload_bits(0) == 1
        assert payload_bits(1) == 1
        assert payload_bits(2) == 2
        assert payload_bits(255) == 8
        assert payload_bits(256) == 9

    def test_negative_ints_pay_sign_bit(self):
        assert payload_bits(-1) == payload_bits(1) + 1

    def test_float_constant(self):
        assert payload_bits(3.14) == 32

    def test_short_string_is_tag(self):
        # Protocol tags are constant-alphabet symbols: 4 bits.
        assert payload_bits("D") == 4
        assert payload_bits("tok") == 4

    def test_long_string_charged_per_char(self):
        assert payload_bits("x" * 20) == 160

    def test_tuple_sums_parts(self):
        assert payload_bits(("D", 3, 255)) == 4 + 2 + 8

    def test_nested_containers(self):
        assert payload_bits((1, (2, 3))) == 1 + 2 + 2

    def test_size_bits_protocol(self):
        s = ParitySketch.zero(10)
        assert payload_bits(s) == 10
        assert payload_bits(("S", s)) == 14

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_bits(object())


class TestMessage:
    def test_bits_computed_from_payload(self):
        m = Message(0, 1, ("x", 7))
        assert m.bits == payload_bits(("x", 7))
        assert m.sized() == m.bits

    def test_explicit_bits_respected(self):
        m = Message(0, 1, "whatever", bits=99)
        assert m.bits == 99

    def test_equality_ignores_bits_field(self):
        assert Message(0, 1, 5) == Message(0, 1, 5, bits=77)
        assert Message(0, 1, 5) != Message(0, 2, 5)
        assert Message(0, 1, 5, kind="a") != Message(0, 1, 5, kind="b")

    def test_repr_mentions_endpoints(self):
        assert "0->1" in repr(Message(0, 1, "hi"))

    # -- hash/eq contract ------------------------------------------------
    # Regression: __hash__ used repr(payload) while __eq__ compares with
    # ``==``, so equal messages could hash unequal (1 vs True vs 1.0) and
    # set/dict dedup silently kept duplicates.
    EQUAL_PAYLOAD_PAIRS = [
        (1, True),
        (0, False),
        (1, 1.0),
        (0.0, False),
        ((1, 2), (1, 2.0)),
        ((1, ("a", 0)), (1, ("a", False))),
        ([1, 2], [1, 2]),  # unhashable payloads hash on (src, dst, kind)
        ([1], [1.0]),  # ...even when their reprs differ
    ]

    @pytest.mark.parametrize("a,b", EQUAL_PAYLOAD_PAIRS)
    def test_equal_messages_hash_equal(self, a, b):
        ma, mb = Message(0, 1, a, kind="k"), Message(0, 1, b, kind="k")
        assert ma == mb
        assert hash(ma) == hash(mb)
        assert len({ma, mb}) == 1
        assert {ma: "x"} == {mb: "x"}

    def test_unhashable_payload_message_is_hashable(self):
        m = Message(0, 1, [1, [2, 3]])
        assert isinstance(hash(m), int)
        assert m in {m}

    def test_distinct_messages_stay_distinct_in_sets(self):
        msgs = {Message(0, 1, 5), Message(0, 2, 5), Message(1, 1, 5),
                Message(0, 1, 6), Message(0, 1, 5, kind="other")}
        assert len(msgs) == 5

    def test_hash_eq_property_sweep(self):
        """Property: for a grid of hashable payload shapes, m1 == m2
        implies hash(m1) == hash(m2) (Python's own payload hashing makes
        the cross-type aliases 1 == True == 1.0 agree)."""
        payloads = [0, 1, True, False, 1.0, "x", None, (1, 2), (True, 2.0),
                    (1, 2.0), ("x", (0,)), ("x", (False,))]
        msgs = [Message(0, 1, p) for p in payloads]
        for m1 in msgs:
            for m2 in msgs:
                if m1 == m2:
                    assert hash(m1) == hash(m2), (m1, m2)


class TestMessageBatchColumns:
    def test_from_columns_captures_list_cols(self):
        b = MessageBatch.from_columns(2, [5, 6], [("a", 1), 9], kind="k")
        srcs, dsts, bits = b.list_cols
        assert srcs == [2, 2]
        assert dsts == [5, 6]
        assert bits == [payload_bits(("a", 1)), payload_bits(9)]

    def test_from_columns_empty(self):
        b = MessageBatch.from_columns(0, [], [])
        assert list(b) == []
        assert b.list_cols == ([], [], [])

    def test_from_columns_per_message_kinds(self):
        b = MessageBatch.from_columns(0, [1, 2], ["x", "y"], kind=["a", "b"])
        assert [m.kind for m in b] == ["a", "b"]

    def test_raw_batch_derives_list_cols_lazily(self):
        b = MessageBatch([Message(1, 2, "x"), Message(3, 4, "y")])
        srcs, dsts, bits = b.list_cols
        assert srcs == [1, 3]
        assert dsts == [2, 4]
        assert bits == [4, 4]

    def test_batch_is_frozen(self):
        b = MessageBatch.from_columns(0, [1], ["x"])
        with pytest.raises(TypeError):
            b.append(Message(0, 2, "y"))
        with pytest.raises(TypeError):
            b[0] = Message(0, 2, "y")


class TestBatchBuilder:
    def test_groups_by_sender_in_first_occurrence_order(self):
        out = BatchBuilder(kind="t")
        out.add(3, 1, "a")
        out.add(0, 2, "b")
        out.add(3, 5, "c")
        batches = out.batches()
        assert list(batches) == [3, 0]
        assert [(m.src, m.dst, m.payload) for m in batches[3]] == [
            (3, 1, "a"),
            (3, 5, "c"),
        ]
        assert len(out) == 3
        assert bool(out)
        assert out.senders() == [3, 0]

    def test_default_and_override_kinds(self):
        out = BatchBuilder(kind="data")
        out.add(0, 1, "x")
        out.add(0, 2, "y", kind="token")
        assert [m.kind for m in out.batches()[0]] == ["data", "token"]

    def test_add_many_parallel_columns(self):
        out = BatchBuilder(kind="k")
        out.add_many(1, [4, 5], ["p", "q"])
        (batch,) = out.batches().values()
        assert [(m.dst, m.payload) for m in batch] == [(4, "p"), (5, "q")]
        with pytest.raises(ValueError):
            BatchBuilder().add_many(1, [1, 2, 3], ["only", "two"])

    def test_empty_builder(self):
        out = BatchBuilder()
        assert not out
        assert len(out) == 0
        assert out.batches() == {}

    def test_add_many_is_atomic(self):
        """An empty run must not register the sender and a mismatched run
        must queue nothing — ``bool(builder)`` drives round loops."""
        out = BatchBuilder()
        out.add_many(5, [], [])
        assert not out
        assert out.senders() == []
        with pytest.raises(ValueError):
            out.add_many(1, [1, 2, 3], ["only", "two"])
        assert len(out) == 0

    def test_rejects_non_int_ids_like_message(self):
        out = BatchBuilder()
        with pytest.raises(TypeError, match="node ids must be ints"):
            out.add(0, 2.5, "x")

    def test_spent_after_finalize(self):
        """Finalization hands the builder's column lists to the (frozen)
        batches zero-copy, so adding afterwards must raise instead of
        silently corrupting the batches' cached columns."""
        out = BatchBuilder()
        out.add(0, 1, "x")
        batch = out.batches()[0]
        with pytest.raises(TypeError, match="finalized"):
            out.add(0, 2, "y")
        with pytest.raises(TypeError, match="finalized"):
            out.add_many(0, [2], ["y"])
        assert len(batch) == 1
        assert (batch.srcs(), batch.dsts(), [m.bits for m in batch]) == ([0], [1], [4])

    def test_spent_after_finalize_eager(self):
        """Same contract in eager mode, where batches are MessageBatch."""
        out = BatchBuilder(deferred=False)
        out.add(0, 1, "x")
        batch = out.batches()[0]
        with pytest.raises(TypeError, match="finalized"):
            out.add(0, 2, "y")
        assert isinstance(batch, MessageBatch)
        assert batch.list_cols == ([0], [1], [4])

    def test_deferred_finalize_is_frozen_tagged_mapping(self):
        out = BatchBuilder(kind="t")
        out.add(3, 1, "a")
        out.add(0, 2, ("b", 7))
        batches = out.batches()
        assert type(batches) is BuilderBatches
        assert list(batches) == [3, 0]
        assert all(type(b) is InboxBatch for b in batches.values())
        # Round-level bit totals tracked during accumulation.
        assert batches.bits_sum == payload_bits("a") + payload_bits(("b", 7))
        assert batches.bits_max == payload_bits(("b", 7))
        with pytest.raises(TypeError, match="immutable"):
            batches[9] = []
        with pytest.raises(TypeError, match="immutable"):
            batches.pop(3)

    def test_deferred_add_validates_like_message(self):
        out = BatchBuilder()
        with pytest.raises(TypeError, match="node ids must be ints"):
            out.add(0, 2.5, "x")
        with pytest.raises(TypeError, match="node ids must be ints"):
            out.add("a", 2, "x")
        with pytest.raises(TypeError, match="cannot size payload"):
            out.add(0, 1, object())
        assert len(out) == 0  # failed adds queue nothing


class TestInboxBatch:
    """The lazy columnar inbox view: list-compatible, frozen, zero-copy."""

    def make(self, kind="k"):
        return InboxBatch(2, [5, 6, 5], [("a", 1), 9, None], kinds=kind)

    def test_sequence_protocol(self):
        b = self.make()
        assert len(b) == 3
        assert [m.payload for m in b] == [("a", 1), 9, None]
        assert b[1].dst == 6
        assert b[-1].payload is None
        with pytest.raises(IndexError):
            b[3]

    def test_materialization_is_lazy_and_per_element(self):
        b = self.make()
        before = message_construction_count()
        assert b.payloads() == [("a", 1), 9, None]
        assert b.srcs() == [2, 2, 2]
        assert b.dsts() == [5, 6, 5]
        assert b.kinds() == ["k", "k", "k"]
        assert b.items() == [(2, ("a", 1)), (2, 9), (2, None)]
        assert message_construction_count() == before
        m = b[1]
        assert message_construction_count() == before + 1
        assert b[1] is m  # cached per index
        assert message_construction_count() == before + 1
        assert m == Message(2, 6, 9, "k")

    def test_equality_against_lists_both_directions(self):
        b = self.make()
        msgs = [Message(2, 5, ("a", 1), "k"), Message(2, 6, 9, "k"),
                Message(2, 5, None, "k")]
        before = message_construction_count()
        assert b == msgs
        assert msgs == b  # list delegates to the reflected operator
        assert message_construction_count() == before  # structural compare
        assert b != msgs[:2]
        assert b != [*msgs[:2], Message(2, 5, "other", "k")]
        assert b != [*msgs[:2], Message(9, 5, None, "k")]

    def test_equality_between_batches(self):
        assert self.make() == self.make()
        assert self.make() != self.make(kind="else")

    def test_unhashable_like_a_list(self):
        with pytest.raises(TypeError):
            hash(self.make())

    def test_frozen_no_mutators(self):
        b = self.make()
        with pytest.raises(TypeError):
            b[0] = Message(0, 1, "x")
        assert not hasattr(b, "append")

    def test_per_message_kind_column(self):
        b = InboxBatch(0, [1, 2], ["x", "y"], kinds=["a", "b"])
        assert b.kinds() == ["a", "b"]
        assert [m.kind for m in b] == ["a", "b"]

    def test_column_length_mismatches_rejected(self):
        with pytest.raises(ValueError):
            InboxBatch(0, [1, 2], ["only"])
        with pytest.raises(ValueError):
            InboxBatch([0], [1, 2], ["a", "b"])
        with pytest.raises(ValueError):
            InboxBatch(0, [1], ["a"], kinds=["x", "y"])
        with pytest.raises(ValueError):
            InboxBatch(0, [1], ["a"], bits=[1, 2])

    def test_non_int_ids_rejected(self):
        with pytest.raises(TypeError, match="node ids must be ints"):
            InboxBatch(0, [1, 2.5], ["a", "b"])

    def test_helpers_engine_agnostic(self):
        b = self.make()
        msgs = list(b)
        assert payloads_of(b) == payloads_of(msgs) == [("a", 1), 9, None]
        assert srcs_of(b) == srcs_of(msgs) == [2, 2, 2]
        assert items_of(b) == items_of(msgs)

    def test_bits_agg_matches_payload_sizes(self):
        b = self.make()
        sizes = [payload_bits(("a", 1)), payload_bits(9), payload_bits(None)]
        assert b.bits_agg == (sum(sizes), max(sizes))
        assert [m.bits for m in b] == sizes


class TestBoolSrcNormalization:
    def test_from_columns_bool_src_normalized(self):
        """bool passes the isinstance(src, int) check; it must not leak
        into the uniform-src metadata or the built messages as a bool."""
        b = MessageBatch.from_columns(True, [3, 4], ["a", "b"])
        assert b._uniform_src == 1
        assert type(b._uniform_src) is int
        assert [type(m.src) for m in b] == [int, int]
        assert b.list_cols[0] == [1, 1]
        assert b == MessageBatch.from_columns(1, [3, 4], ["a", "b"])

    def test_builder_bool_src_key_normalized(self):
        out = BatchBuilder()
        out.add(True, 3, "a")
        batches = out.batches()
        (src,) = batches.keys()
        assert src == 1 and type(src) is int

    def test_builder_bool_and_intenum_dst_normalized(self):
        """Regression: bool/IntEnum ids pass the isinstance retry but must
        be stored as plain ints — a bool scalar in a delivered column
        breaks element access and inbox keys."""
        import enum

        class Node(enum.IntEnum):
            SINK = 2

        out = BatchBuilder()
        out.add(0, True, "a")
        out.add(0, Node.SINK, "b")
        out.add_many(False, [Node.SINK, True], ["c", "d"])  # False -> sender 0
        batches = out.batches()
        assert list(batches) == [0]
        assert all(type(s) is int for s in batches)
        batch = batches[0]
        assert all(type(d) is int for d in batch.dsts())
        assert batch.dsts() == [1, 2, 2, 1]
        assert batch[0].dst == 1

    def test_bool_dst_round_delivers_identically(self):
        """End-to-end: a bool dst in a deferred round must deliver the
        same int-keyed inbox under both engines."""
        from repro import Enforcement, NCCConfig, NCCNetwork

        inboxes = {}
        for engine in ("reference", "batched"):
            net = NCCNetwork(8, NCCConfig(seed=1, enforcement=Enforcement.COUNT, engine=engine))
            out = BatchBuilder()
            out.add(0, True, ("x", 1))
            out.add(3, 1, ("y", 2))
            inboxes[engine] = net.exchange(out)
        assert inboxes["reference"] == inboxes["batched"]
        assert list(inboxes["reference"]) == list(inboxes["batched"]) == [1]
        box = inboxes["batched"][1]
        assert box[0].dst == 1 and type(box[0].dst) is int
