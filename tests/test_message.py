"""Message payload bit accounting, batch columns, and the batch builder."""

import pytest

from repro.hashing.sketches import ParitySketch
from repro.ncc.message import BatchBuilder, Message, MessageBatch, payload_bits


class TestPayloadBits:
    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_ints(self):
        assert payload_bits(0) == 1
        assert payload_bits(1) == 1
        assert payload_bits(2) == 2
        assert payload_bits(255) == 8
        assert payload_bits(256) == 9

    def test_negative_ints_pay_sign_bit(self):
        assert payload_bits(-1) == payload_bits(1) + 1

    def test_float_constant(self):
        assert payload_bits(3.14) == 32

    def test_short_string_is_tag(self):
        # Protocol tags are constant-alphabet symbols: 4 bits.
        assert payload_bits("D") == 4
        assert payload_bits("tok") == 4

    def test_long_string_charged_per_char(self):
        assert payload_bits("x" * 20) == 160

    def test_tuple_sums_parts(self):
        assert payload_bits(("D", 3, 255)) == 4 + 2 + 8

    def test_nested_containers(self):
        assert payload_bits((1, (2, 3))) == 1 + 2 + 2

    def test_size_bits_protocol(self):
        s = ParitySketch.zero(10)
        assert payload_bits(s) == 10
        assert payload_bits(("S", s)) == 14

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_bits(object())


class TestMessage:
    def test_bits_computed_from_payload(self):
        m = Message(0, 1, ("x", 7))
        assert m.bits == payload_bits(("x", 7))
        assert m.sized() == m.bits

    def test_explicit_bits_respected(self):
        m = Message(0, 1, "whatever", bits=99)
        assert m.bits == 99

    def test_equality_ignores_bits_field(self):
        assert Message(0, 1, 5) == Message(0, 1, 5, bits=77)
        assert Message(0, 1, 5) != Message(0, 2, 5)
        assert Message(0, 1, 5, kind="a") != Message(0, 1, 5, kind="b")

    def test_repr_mentions_endpoints(self):
        assert "0->1" in repr(Message(0, 1, "hi"))


class TestMessageBatchColumns:
    def test_from_columns_captures_list_cols(self):
        b = MessageBatch.from_columns(2, [5, 6], [("a", 1), 9], kind="k")
        srcs, dsts, bits = b.list_cols
        assert srcs == [2, 2]
        assert dsts == [5, 6]
        assert bits == [payload_bits(("a", 1)), payload_bits(9)]

    def test_from_columns_empty(self):
        b = MessageBatch.from_columns(0, [], [])
        assert list(b) == []
        assert b.list_cols == ([], [], [])

    def test_from_columns_per_message_kinds(self):
        b = MessageBatch.from_columns(0, [1, 2], ["x", "y"], kind=["a", "b"])
        assert [m.kind for m in b] == ["a", "b"]

    def test_raw_batch_derives_list_cols_lazily(self):
        b = MessageBatch([Message(1, 2, "x"), Message(3, 4, "y")])
        srcs, dsts, bits = b.list_cols
        assert srcs == [1, 3]
        assert dsts == [2, 4]
        assert bits == [4, 4]

    def test_batch_is_frozen(self):
        b = MessageBatch.from_columns(0, [1], ["x"])
        with pytest.raises(TypeError):
            b.append(Message(0, 2, "y"))
        with pytest.raises(TypeError):
            b[0] = Message(0, 2, "y")


class TestBatchBuilder:
    def test_groups_by_sender_in_first_occurrence_order(self):
        out = BatchBuilder(kind="t")
        out.add(3, 1, "a")
        out.add(0, 2, "b")
        out.add(3, 5, "c")
        batches = out.batches()
        assert list(batches) == [3, 0]
        assert [(m.src, m.dst, m.payload) for m in batches[3]] == [
            (3, 1, "a"),
            (3, 5, "c"),
        ]
        assert len(out) == 3
        assert bool(out)
        assert out.senders() == [3, 0]

    def test_default_and_override_kinds(self):
        out = BatchBuilder(kind="data")
        out.add(0, 1, "x")
        out.add(0, 2, "y", kind="token")
        assert [m.kind for m in out.batches()[0]] == ["data", "token"]

    def test_add_many_parallel_columns(self):
        out = BatchBuilder(kind="k")
        out.add_many(1, [4, 5], ["p", "q"])
        (batch,) = out.batches().values()
        assert [(m.dst, m.payload) for m in batch] == [(4, "p"), (5, "q")]
        with pytest.raises(ValueError):
            BatchBuilder().add_many(1, [1, 2, 3], ["only", "two"])

    def test_empty_builder(self):
        out = BatchBuilder()
        assert not out
        assert len(out) == 0
        assert out.batches() == {}

    def test_add_many_is_atomic(self):
        """An empty run must not register the sender and a mismatched run
        must queue nothing — ``bool(builder)`` drives round loops."""
        out = BatchBuilder()
        out.add_many(5, [], [])
        assert not out
        assert out.senders() == []
        with pytest.raises(ValueError):
            out.add_many(1, [1, 2, 3], ["only", "two"])
        assert len(out) == 0

    def test_rejects_non_int_ids_like_message(self):
        out = BatchBuilder()
        with pytest.raises(TypeError, match="node ids must be ints"):
            out.add(0, 2.5, "x")

    def test_spent_after_finalize(self):
        """Finalization hands the builder's column lists to the (frozen)
        batches zero-copy, so adding afterwards must raise instead of
        silently corrupting the batches' cached columns."""
        out = BatchBuilder()
        out.add(0, 1, "x")
        batch = out.batches()[0]
        with pytest.raises(TypeError, match="finalized"):
            out.add(0, 2, "y")
        with pytest.raises(TypeError, match="finalized"):
            out.add_many(0, [2], ["y"])
        assert len(batch) == 1
        assert batch.list_cols == ([0], [1], [4])
