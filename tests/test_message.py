"""Message payload bit accounting."""

import pytest

from repro.hashing.sketches import ParitySketch
from repro.ncc.message import Message, payload_bits


class TestPayloadBits:
    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_ints(self):
        assert payload_bits(0) == 1
        assert payload_bits(1) == 1
        assert payload_bits(2) == 2
        assert payload_bits(255) == 8
        assert payload_bits(256) == 9

    def test_negative_ints_pay_sign_bit(self):
        assert payload_bits(-1) == payload_bits(1) + 1

    def test_float_constant(self):
        assert payload_bits(3.14) == 32

    def test_short_string_is_tag(self):
        # Protocol tags are constant-alphabet symbols: 4 bits.
        assert payload_bits("D") == 4
        assert payload_bits("tok") == 4

    def test_long_string_charged_per_char(self):
        assert payload_bits("x" * 20) == 160

    def test_tuple_sums_parts(self):
        assert payload_bits(("D", 3, 255)) == 4 + 2 + 8

    def test_nested_containers(self):
        assert payload_bits((1, (2, 3))) == 1 + 2 + 2

    def test_size_bits_protocol(self):
        s = ParitySketch.zero(10)
        assert payload_bits(s) == 10
        assert payload_bits(("S", s)) == 14

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_bits(object())


class TestMessage:
    def test_bits_computed_from_payload(self):
        m = Message(0, 1, ("x", 7))
        assert m.bits == payload_bits(("x", 7))
        assert m.sized() == m.bits

    def test_explicit_bits_respected(self):
        m = Message(0, 1, "whatever", bits=99)
        assert m.bits == 99

    def test_equality_ignores_bits_field(self):
        assert Message(0, 1, 5) == Message(0, 1, 5, bits=77)
        assert Message(0, 1, 5) != Message(0, 2, 5)
        assert Message(0, 1, 5, kind="a") != Message(0, 1, 5, kind="b")

    def test_repr_mentions_endpoints(self):
        assert "0->1" in repr(Message(0, 1, "hi"))
