"""Complexity fitting and table rendering."""

import math

import pytest

from repro.analysis.complexity import (
    PAPER_MODELS,
    best_model,
    doubling_ratios,
    fit_single_coefficient,
    growth_exponent,
    rank_models,
)
from repro.analysis.reporting import format_table


class TestFitting:
    def synth(self, model_name, ns, coeff=3.0, a=2, D=10):
        fn = PAPER_MODELS[model_name]
        params = [{"n": n, "a": a, "D": D} for n in ns]
        ys = [coeff * fn(p) for p in params]
        return params, ys

    def test_recovers_planted_coefficient(self):
        params, ys = self.synth("log^4 n", [32, 64, 128, 256, 512])
        fit = fit_single_coefficient(params, ys, PAPER_MODELS["log^4 n"], "log^4 n")
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.rmse < 1e-9

    @pytest.mark.parametrize(
        "planted",
        ["log^4 n", "n", "n / log n", "(a + log n) log n"],
    )
    def test_best_model_identifies_planted(self, planted):
        params, ys = self.synth(planted, [32, 64, 128, 256, 512, 1024])
        fit = best_model(params, ys)
        # the planted model must fit essentially perfectly
        planted_fit = [f for f in rank_models(params, ys) if f.model == planted][0]
        assert planted_fit.rmse < 1e-9
        assert fit.rmse <= planted_fit.rmse + 1e-12

    def test_noise_tolerated(self):
        import random

        rng = random.Random(1)
        params, ys = self.synth("log^2 n", [32, 64, 128, 256, 512])
        noisy = [y * rng.uniform(0.95, 1.05) for y in ys]
        fits = rank_models(params, noisy)
        planted = [f for f in fits if f.model == "log^2 n"][0]
        assert planted.rmse < 0.1

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            fit_single_coefficient([], [], PAPER_MODELS["n"], "n")


class TestGrowthProbes:
    def test_linear_exponent(self):
        ns = [32, 64, 128, 256]
        assert growth_exponent(ns, [5 * n for n in ns]) == pytest.approx(1.0)

    def test_quadratic_exponent(self):
        ns = [32, 64, 128, 256]
        assert growth_exponent(ns, [n * n for n in ns]) == pytest.approx(2.0)

    def test_polylog_exponent_small(self):
        ns = [64, 256, 1024, 4096]
        ys = [math.log2(n) ** 3 for n in ns]
        assert growth_exponent(ns, ys) < 0.7

    def test_doubling_ratios(self):
        assert doubling_ratios([2, 4, 8]) == [2.0, 2.0]
        assert doubling_ratios([5]) == []


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(
            ["n", "rounds"], [[32, 1000], [1024, 250000]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "n" in lines[1] and "rounds" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456], [12.3], [1234.5]])
        assert "0.123" in out
        assert "12.30" in out
        assert "1234" in out  # wait, 1234.5 -> "1235" rounding; accept either
