"""The NCC round engine: exchanges, capacity enforcement, statistics."""

import pytest

from repro import (
    CapacityError,
    Enforcement,
    MessageSizeError,
    NCCConfig,
    NCCNetwork,
    SimulationLimitError,
)
from repro.ncc.message import Message


def net(n=16, mode=Enforcement.STRICT, **kw) -> NCCNetwork:
    return NCCNetwork(n, NCCConfig(seed=1, enforcement=mode, **kw))


class TestExchangeMechanics:
    def test_messages_delivered_to_inboxes(self):
        nw = net()
        inbox = nw.exchange([Message(0, 1, "a"), Message(2, 1, "b"), Message(3, 4, "c")])
        assert {m.payload for m in inbox[1]} == {"a", "b"}
        assert [m.payload for m in inbox[4]] == ["c"]

    def test_empty_round_still_counts(self):
        nw = net()
        nw.exchange(())
        assert nw.round_index == 1
        assert nw.stats.messages == 0

    def test_mapping_input_form(self):
        nw = net()
        inbox = nw.exchange({0: [Message(0, 5, "x")]})
        assert inbox[5][0].payload == "x"

    def test_mapping_sender_mismatch_rejected(self):
        nw = net()
        with pytest.raises(ValueError):
            nw.exchange({0: [Message(1, 5, "x")]})

    def test_bad_node_ids_rejected(self):
        nw = net(4)
        with pytest.raises(ValueError):
            nw.exchange([Message(0, 9, "x")])
        with pytest.raises(ValueError):
            nw.exchange([Message(-1, 0, "x")])

    def test_run_rounds_merges_and_elapses(self):
        nw = net()
        sched = {0: [Message(0, 1, "a")], 3: [Message(2, 1, "b")]}
        merged = nw.run_rounds(sched)
        assert nw.round_index == 4  # rounds 0..3 all elapse
        assert {m.payload for m in merged[1]} == {"a", "b"}

    def test_run_rounds_rejects_negative_keys(self):
        """Regression: ``horizon = max(keys)`` silently dropped any traffic
        scheduled under a negative round key (messages vanished, zero
        rounds elapsed).  Negative offsets are schedule bugs — raise."""
        nw = net()
        with pytest.raises(ValueError, match="negative"):
            nw.run_rounds({-2: [Message(0, 1, "lost")]})
        assert nw.round_index == 0  # nothing elapsed before the rejection
        with pytest.raises(ValueError, match=r"\[-3, -1\]"):
            nw.run_rounds(
                {-1: [Message(0, 1, "a")], -3: [], 2: [Message(0, 1, "b")]}
            )
        assert nw.round_index == 0

    def test_idle_rounds(self):
        nw = net()
        nw.idle_rounds(7)
        assert nw.round_index == 7

    def test_max_rounds_limit(self):
        nw = net(4, max_rounds=3)
        nw.idle_rounds(3)
        with pytest.raises(SimulationLimitError):
            nw.exchange(())

    def test_self_message_allowed_and_counted(self):
        nw = net()
        inbox = nw.exchange([Message(3, 3, "self")])
        assert inbox[3][0].payload == "self"
        assert nw.stats.messages == 1


class TestCapacityEnforcement:
    def overload(self, nw, dst=1, count=None):
        count = count if count is not None else nw.capacity + 5
        return [Message(src, dst, "x") for src in range(min(count, nw.n))]

    def test_strict_receive_raises(self):
        nw = net(64)
        msgs = [Message(s, 0, "x") for s in range(nw.capacity + 1)]
        with pytest.raises(CapacityError) as e:
            nw.exchange(msgs)
        assert e.value.node == 0
        assert e.value.count == nw.capacity + 1

    def test_strict_send_raises(self):
        nw = net(64)
        msgs = [Message(0, d, "x") for d in range(1, nw.capacity + 2)]
        with pytest.raises(CapacityError):
            nw.exchange(msgs)

    def test_count_mode_delivers_and_ledgers(self):
        nw = net(64, Enforcement.COUNT)
        msgs = [Message(s, 0, "x") for s in range(nw.capacity + 3)]
        inbox = nw.exchange(msgs)
        assert len(inbox[0]) == nw.capacity + 3  # everything delivered
        assert nw.stats.violation_count == 1
        v = nw.stats.violations[0]
        assert (v.kind, v.node, v.count) == ("recv", 0, nw.capacity + 3)

    def test_drop_mode_trims_to_capacity(self):
        nw = net(64, Enforcement.DROP)
        extra = 6
        msgs = [Message(s, 0, ("t", s)) for s in range(nw.capacity + extra)]
        inbox = nw.exchange(msgs)
        assert len(inbox[0]) == nw.capacity
        assert nw.stats.dropped == extra
        # Dropped subset is a subset of what was sent.
        delivered = {m.payload[1] for m in inbox[0]}
        assert delivered <= set(range(nw.capacity + extra))

    def test_drop_mode_trims_senders_too(self):
        nw = net(64, Enforcement.DROP)
        msgs = [Message(0, d, "x") for d in range(1, nw.capacity + 4)]
        inbox = nw.exchange(msgs)
        total = sum(len(v) for v in inbox.values())
        assert total == nw.capacity

    def test_within_capacity_no_violations(self):
        nw = net(64)
        msgs = [Message(s, (s + 1) % 64, "x") for s in range(64)]
        nw.exchange(msgs)
        assert nw.stats.violation_count == 0


class TestValidationBeforeTrim:
    """Regression: validation must happen before DROP-mode trimming.

    A Mapping entry whose message ``src`` disagrees with its sender key
    used to escape detection in DROP mode whenever the random trim dropped
    the offending message; STRICT and DROP must report the same violating
    messages.
    """

    def overloaded_with_mismatch(self, nw):
        msgs = [Message(0, d % nw.n, "x") for d in range(nw.capacity + 5)]
        msgs[1] = Message(1, 3, "x")  # wrong src, inside an over-budget group
        return msgs

    @pytest.mark.parametrize("mode", list(Enforcement))
    def test_mismatched_src_rejected_in_every_mode(self, mode):
        nw = net(64, mode)
        with pytest.raises(ValueError, match="enqueued under sender"):
            nw.exchange({0: self.overloaded_with_mismatch(nw)})

    @pytest.mark.parametrize("mode", list(Enforcement))
    def test_bad_dst_rejected_in_every_mode(self, mode):
        nw = net(64, mode)
        msgs = [Message(0, d % nw.n, "x") for d in range(nw.capacity + 5)]
        msgs[1] = Message(0, 999, "x")
        with pytest.raises(ValueError, match="outside"):
            nw.exchange({0: msgs})

    def test_drop_rng_not_consumed_by_rejected_round(self):
        """The rejected round must not advance the DROP sampling stream."""
        nw = net(64, Enforcement.DROP)
        with pytest.raises(ValueError):
            nw.exchange({0: self.overloaded_with_mismatch(nw)})
        state_after_reject = nw._drop_rng.getstate()
        nw2 = net(64, Enforcement.DROP)
        assert state_after_reject == nw2._drop_rng.getstate()


class TestEngineSelection:
    @pytest.mark.engine("reference")  # asserts the unpatched default
    def test_default_engine_is_reference(self):
        assert net().engine.name == "reference"

    def test_batched_engine_selected_via_config(self):
        nw = net(16, engine="batched")
        assert nw.engine.name == "batched"
        assert "batched" in repr(nw)

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            NCCConfig(engine="warp-drive")

    def test_both_engines_agree_on_simple_round(self):
        results = {}
        for engine in ("reference", "batched"):
            nw = net(16, engine=engine)
            inbox = nw.exchange([Message(0, 1, "a"), Message(2, 1, "b")])
            results[engine] = (list(inbox.items()), nw.stats.comparable())
        assert results["reference"] == results["batched"]


class TestMessageSize:
    def test_oversized_payload_strict(self):
        nw = net(16)
        big = tuple(range(200))
        with pytest.raises(MessageSizeError):
            nw.exchange([Message(0, 1, big)])

    def test_oversized_payload_counted(self):
        nw = net(16, Enforcement.COUNT)
        nw.exchange([Message(0, 1, tuple(range(200)))])
        assert any(v.kind == "bits" for v in nw.stats.violations)

    def test_budget_matches_config(self):
        nw = net(256)
        assert nw.message_bits == NCCConfig().message_bits(256)


class TestStatsAndPhases:
    def test_bits_and_messages_accumulate(self):
        nw = net()
        nw.exchange([Message(0, 1, 7), Message(1, 2, 3)])
        assert nw.stats.messages == 2
        assert nw.stats.bits == 3 + 2

    def test_phase_attribution_nested(self):
        nw = net()
        with nw.phase("outer"):
            nw.exchange([Message(0, 1, 1)])
            with nw.phase("inner"):
                nw.exchange([Message(0, 1, 1)])
        outer = nw.stats.phase("outer")
        inner = nw.stats.phase("inner")
        assert outer.rounds == 2 and outer.messages == 2
        assert inner.rounds == 1 and inner.messages == 1
        assert outer.entries == 1 and inner.entries == 1

    def test_unknown_phase_is_zero(self):
        nw = net()
        assert nw.stats.phase("nope").rounds == 0

    def test_max_per_round_tracking(self):
        nw = net(64, Enforcement.COUNT)
        nw.exchange([Message(0, d, "x") for d in range(1, 5)])
        assert nw.stats.max_sent_per_round == 4

    def test_observer_sees_per_sender_map(self):
        nw = net()
        seen = []
        nw.round_observer = lambda r, per_sender: seen.append(
            (r, {s: len(ms) for s, ms in per_sender.items()})
        )
        nw.exchange([Message(0, 1, "a"), Message(0, 2, "b"), Message(3, 1, "c")])
        assert seen == [(0, {0: 2, 3: 1})]

    def test_summary_keys(self):
        s = net().stats.summary()
        assert {"rounds", "messages", "bits", "dropped", "violations"} <= set(s)


class TestDeterminism:
    def test_drop_selection_reproducible(self):
        def run():
            nw = net(64, Enforcement.DROP)
            msgs = [Message(s, 0, ("t", s)) for s in range(nw.capacity + 9)]
            inbox = nw.exchange(msgs)
            return sorted(m.payload[1] for m in inbox[0])

        assert run() == run()
