"""Multicast Tree Setup (Theorem 2.4) + Multicast (Theorem 2.5)."""

import math
import random

import pytest

from repro import NCCRuntime
from tests.conftest import make_runtime


class TestTreeSetup:
    def test_trees_for_all_groups(self, rt20):
        memberships = {u: [u % 3] for u in range(20)}
        trees = rt20.multicast_setup(memberships)
        assert set(trees.root) == {0, 1, 2}
        assert rt20.net.stats.violation_count == 0

    def test_leaf_members_cover_everyone(self, rt20):
        memberships = {u: [u % 3] for u in range(20)}
        trees = rt20.multicast_setup(memberships)
        for g in (0, 1, 2):
            members = [
                m for col, ms in trees.leaf_members[g].items() for m in ms
            ]
            assert sorted(members) == [u for u in range(20) if u % 3 == g]

    def test_delegated_joins(self, rt16):
        # node 0 injects memberships on behalf of others (Lemma 5.1 style).
        injections = {0: [("g", 4), ("g", 5)], 7: [("g", 7)]}
        trees = rt16.multicast_setup_delegated(injections)
        members = [m for ms in trees.leaf_members["g"].values() for m in ms]
        assert sorted(members) == [4, 5, 7]

    def test_congestion_bound_shape(self):
        """Theorem 2.4: congestion O(L/n + log n); verify against the
        formula with a generous constant."""
        rng = random.Random(1)
        for n, groups, per_node in [(32, 8, 2), (64, 16, 3), (64, 4, 1)]:
            rt = make_runtime(n, seed=7)
            memberships = {
                u: rng.sample(range(groups), per_node) for u in range(n)
            }
            trees = rt.multicast_setup(memberships)
            L = n * per_node
            bound = 8 * (L / n + math.log2(n))
            assert trees.congestion() <= bound

    def test_empty_setup(self, rt16):
        trees = rt16.multicast_setup({})
        assert trees.root == {}


class TestMulticast:
    def test_every_member_receives(self, rt20):
        memberships = {u: [u % 4] for u in range(20)}
        trees = rt20.multicast_setup(memberships)
        packets = {g: ("payload", g) for g in range(4)}
        sources = {g: g + 10 for g in range(4)}
        out = rt20.multicast(trees, packets, sources)
        for u in range(20):
            assert out.at(u).get(u % 4) == ("payload", u % 4)
        assert rt20.net.stats.violation_count == 0

    def test_subset_of_groups_multicast(self, rt20):
        memberships = {u: [u % 4] for u in range(20)}
        trees = rt20.multicast_setup(memberships)
        out = rt20.multicast(trees, {1: "only"}, {1: 0})
        for u in range(20):
            if u % 4 == 1:
                assert out.at(u) == {1: "only"}
            else:
                assert out.at(u) == {}

    def test_missing_tree_rejected(self, rt16):
        trees = rt16.multicast_setup({0: ["g"]})
        with pytest.raises(KeyError):
            rt16.multicast(trees, {"other": 1}, {"other": 0})

    def test_member_of_many_groups(self, rt16):
        memberships = {5: list(range(12)), **{u: [0] for u in range(4)}}
        trees = rt16.multicast_setup(memberships)
        packets = {g: g * 100 for g in range(12)}
        sources = {g: g % 16 for g in range(12)}
        out = rt16.multicast(trees, packets, sources, ell_bound=12)
        assert out.at(5) == {g: g * 100 for g in range(12)}

    def test_reuse_trees_for_multiple_rounds(self, rt20):
        memberships = {u: [u % 2] for u in range(20)}
        trees = rt20.multicast_setup(memberships)
        for val in ("a", "b", "c"):
            out = rt20.multicast(trees, {0: val, 1: val}, {0: 0, 1: 1})
            assert out.at(2) == {0: val}
        assert rt20.net.stats.violation_count == 0

    def test_rounds_scale_with_congestion_plus_log(self):
        rt = make_runtime(64, lightweight_sync=True)
        memberships = {u: [u % 8] for u in range(64)}
        trees = rt.multicast_setup(memberships)
        out = rt.multicast(
            trees, {g: g for g in range(8)}, {g: g for g in range(8)}
        )
        c = trees.congestion()
        assert out.rounds <= 12 * (c + math.log2(64)) + 40
