"""NetworkStats / PhaseStats bookkeeping details."""

from repro.ncc.stats import NetworkStats, PhaseStats, Violation


class TestPhaseStats:
    def test_as_dict(self):
        ps = PhaseStats(rounds=3, messages=10, bits=99, entries=2)
        assert ps.as_dict() == {
            "rounds": 3,
            "messages": 10,
            "bits": 99,
            "entries": 2,
        }

    def test_defaults_zero(self):
        assert PhaseStats().rounds == 0


class TestNetworkStats:
    def test_record_round_attributes_to_all_active_phases(self):
        s = NetworkStats()
        s.record_round(("a", "a:b"), messages=4, bits=40)
        s.record_round(("a",), messages=1, bits=5)
        assert s.rounds == 2
        assert s.messages == 5
        assert s.phase("a").rounds == 2
        assert s.phase("a:b").rounds == 1
        assert s.phase("a:b").messages == 4

    def test_nested_same_label_counts_once(self):
        """Regression: a label nested inside itself (phase("x") within
        phase("x")) must charge each round/message/bit once, not once per
        stack level."""
        s = NetworkStats()
        s.record_round(("x", "x"), messages=4, bits=40)
        assert s.phase("x").rounds == 1
        assert s.phase("x").messages == 4
        assert s.phase("x").bits == 40
        # Totals are unaffected by the dedup.
        assert (s.rounds, s.messages, s.bits) == (1, 4, 40)

    def test_nested_same_label_deep_and_mixed(self):
        s = NetworkStats()
        s.record_round(("a", "b", "a", "a"), messages=2, bits=6)
        assert s.phase("a").as_dict() == {
            "rounds": 1, "messages": 2, "bits": 6, "entries": 0,
        }
        assert s.phase("b").rounds == 1

    def test_nested_same_label_end_to_end(self):
        from repro import Enforcement, NCCConfig, NCCNetwork
        from repro.ncc.message import Message

        nw = NCCNetwork(8, NCCConfig(seed=1, enforcement=Enforcement.COUNT))
        with nw.phase("x"):
            with nw.phase("x"):
                nw.exchange([Message(0, 1, 1)])
        ps = nw.stats.phase("x")
        assert (ps.rounds, ps.messages, ps.entries) == (1, 1, 2)

    def test_phase_entries(self):
        s = NetworkStats()
        s.record_phase_entry("x")
        s.record_phase_entry("x")
        assert s.phase("x").entries == 2

    def test_violations_ledger(self):
        s = NetworkStats()
        v = Violation(round_index=7, node=3, kind="recv", count=30, capacity=20)
        s.record_violation(v)
        assert s.violation_count == 1
        assert s.violations[0].node == 3
        assert s.violations[0].capacity == 20

    def test_summary_round_trip(self):
        s = NetworkStats()
        s.record_round((), messages=2, bits=16)
        summary = s.summary()
        assert summary["rounds"] == 1
        assert summary["messages"] == 2
        assert summary["bits"] == 16
        assert summary["violations"] == 0

    def test_str_contains_key_counts(self):
        s = NetworkStats()
        s.record_round((), 1, 8)
        text = str(s)
        assert "rounds=1" in text and "messages=1" in text


class TestViolation:
    def test_frozen_fields(self):
        v = Violation(0, 1, "send", 10, 5)
        assert (v.round_index, v.node, v.kind, v.count, v.capacity) == (
            0,
            1,
            "send",
            10,
            5,
        )


class TestSerialization:
    def make_stats(self):
        s = NetworkStats()
        s.record_phase_entry("p")
        s.record_round(("p",), messages=3, bits=30)
        s.record_violation(Violation(0, 2, "recv", 9, 4))
        return s

    def test_to_dict_roundtrips_counts(self):
        d = self.make_stats().to_dict()
        assert d["rounds"] == 1
        assert d["phases"]["p"]["messages"] == 3
        assert d["violation_log"][0]["node"] == 2

    def test_to_json_parses(self):
        import json

        d = json.loads(self.make_stats().to_json())
        assert d["violations"] == 1
        assert d["phases"]["p"]["rounds"] == 1

    def test_real_run_serializes(self):
        from repro.graphs import generators
        from repro.algorithms import MISAlgorithm
        from tests.conftest import make_runtime
        import json

        g = generators.cycle(12)
        rt = make_runtime(12, seed=1)
        MISAlgorithm(rt, g).run()
        parsed = json.loads(rt.net.stats.to_json())
        assert parsed["rounds"] == rt.net.round_index
        assert "mis" in parsed["phases"]
