"""The Aggregation Algorithm (Theorem 2.3) against reference reductions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NCCRuntime
from repro.primitives import MIN, SUM, XOR, AggregationProblem
from tests.conftest import make_runtime


def reference(memberships, fn):
    acc = {}
    for u, groups in memberships.items():
        for g, v in groups.items():
            acc[g] = fn(acc[g], v) if g in acc else v
    return acc


class TestProblemDescriptor:
    def test_loads(self):
        p = AggregationProblem(
            memberships={0: {"a": 1, "b": 2}, 1: {"a": 3}},
            targets={"a": 0, "b": 1},
            fn=SUM,
        )
        assert p.global_load() == 3
        assert p.ell1() == 2
        assert p.ell2() == 1

    def test_ell2_counts_groups_per_target(self):
        p = AggregationProblem(
            memberships={0: {"a": 1, "b": 2}},
            targets={"a": 5, "b": 5},
            fn=SUM,
        )
        assert p.ell2() == 2

    def test_validate_missing_target(self):
        p = AggregationProblem(memberships={0: {"a": 1}}, targets={}, fn=SUM)
        with pytest.raises(ValueError):
            p.validate()


class TestCorrectness:
    def test_simple_sum(self, rt20):
        prob = AggregationProblem(
            memberships={u: {u % 4: u} for u in range(20)},
            targets={g: g for g in range(4)},
            fn=SUM,
        )
        out = rt20.aggregation(prob)
        assert out.values == reference(prob.memberships, SUM)

    def test_min_with_tuple_values(self, rt16):
        prob = AggregationProblem(
            memberships={u: {0: (u * 7 % 13, u)} for u in range(16)},
            targets={0: 9},
            fn=MIN,
        )
        out = rt16.aggregation(prob)
        assert out.values[0] == min((u * 7 % 13, u) for u in range(16))
        assert out.by_target == {9: {0: out.values[0]}}

    def test_xor(self, rt16):
        prob = AggregationProblem(
            memberships={u: {"x": u} for u in range(16)},
            targets={"x": 3},
            fn=XOR,
        )
        out = rt16.aggregation(prob)
        exp = 0
        for u in range(16):
            exp ^= u
        assert out.values["x"] == exp

    def test_node_member_of_many_groups(self, rt16):
        prob = AggregationProblem(
            memberships={2: {g: g + 1 for g in range(30)}},
            targets={g: g % 16 for g in range(30)},
            fn=SUM,
        )
        out = rt16.aggregation(prob)
        assert out.values == {g: g + 1 for g in range(30)}

    def test_target_of_many_groups(self, rt16):
        prob = AggregationProblem(
            memberships={u: {("grp", u): 1} for u in range(16)},
            targets={("grp", u): 0 for u in range(16)},
            fn=SUM,
        )
        out = rt16.aggregation(prob)
        assert len(out.by_target[0]) == 16

    def test_empty_problem(self, rt16):
        prob = AggregationProblem(memberships={}, targets={}, fn=SUM)
        out = rt16.aggregation(prob)
        assert out.values == {}

    def test_tuple_group_identifiers(self, rt16):
        prob = AggregationProblem(
            memberships={u: {(u % 2, "tag"): 1} for u in range(16)},
            targets={(0, "tag"): 0, (1, "tag"): 1},
            fn=SUM,
        )
        out = rt16.aggregation(prob)
        assert out.values == {(0, "tag"): 8, (1, "tag"): 8}

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_match_reference(self, seed):
        rng = random.Random(seed)
        n = rng.choice([8, 12, 16, 24])
        rt = make_runtime(n, seed=seed % 1000)
        memberships = {}
        targets = {}
        for u in range(n):
            groups = {}
            for g in rng.sample(range(10), rng.randrange(0, 4)):
                groups[g] = rng.randrange(1000)
                targets[g] = rng.randrange(n)
            if groups:
                memberships[u] = groups
        prob = AggregationProblem(memberships=memberships, targets=targets, fn=SUM)
        out = rt.aggregation(prob)
        assert out.values == reference(memberships, SUM)
        assert rt.net.stats.violation_count == 0


class TestCostShape:
    def test_rounds_logarithmic_for_constant_load(self):
        rounds = []
        for n in (16, 64, 256):
            rt = make_runtime(n, lightweight_sync=True)
            prob = AggregationProblem(
                memberships={u: {u % 4: 1} for u in range(n)},
                targets={g: g for g in range(4)},
                fn=SUM,
            )
            rounds.append(rt.aggregation(prob).rounds)
        # L/n constant => growth must be ~log n, far below linear.
        assert rounds[-1] < rounds[0] * 6

    def test_deterministic_given_seed(self):
        def run():
            rt = make_runtime(24, seed=5)
            prob = AggregationProblem(
                memberships={u: {u % 3: u} for u in range(24)},
                targets={g: g for g in range(3)},
                fn=SUM,
            )
            out = rt.aggregation(prob)
            return out.values, rt.net.round_index

        assert run() == run()
