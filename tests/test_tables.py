"""The Table 1 harness: runners validate and return complete rows."""

import pytest

from repro.analysis import tables


class TestRunners:
    @pytest.mark.parametrize("name", sorted(tables.TABLE1_RUNNERS))
    def test_runner_row_is_correct_and_complete(self, name):
        runner = tables.TABLE1_RUNNERS[name]
        row = runner(24, a=2, seed=1)
        assert row["correct"], f"{name} produced an invalid output"
        assert row["rounds"] > 0
        assert row["violations"] == 0
        assert {"n", "m", "a", "messages"} <= set(row)

    def test_bfs_grid_family_reports_diameter(self):
        row = tables.run_bfs_row(25, family="grid", seed=1)
        assert row["D"] == 8  # 5x5 grid
        assert row["correct"]

    def test_mst_row_reports_weight_range(self):
        row = tables.run_mst_row(16, a=2, seed=1)
        assert row["W"] >= 1

    def test_sweep_shape(self):
        rows = tables.sweep(tables.run_mis_row, [16, 24], a=2, seeds=[0, 1])
        assert len(rows) == 4
        assert [r["n"] for r in rows] == [16, 16, 24, 24]

    def test_bench_config_profile(self):
        cfg = tables.bench_config(7)
        assert cfg.seed == 7
        assert cfg.extras["lightweight_sync"] is True

    def test_bounds_table_covers_runners(self):
        assert set(tables.TABLE1_BOUNDS) == set(tables.TABLE1_RUNNERS)
