"""The result store, the sweep manifest, and resume equivalence: an
interrupted sweep, resumed, must leave byte-identical store shards to an
uninterrupted one — and `repro query` must read both stores and flat
JSONL."""

import json

import pytest

from repro.api import (
    Manifest,
    ManifestError,
    ResultStore,
    RunSpec,
    Session,
    StoreError,
    sweep_grid,
)
from repro.api.store import (
    aggregate,
    field_value,
    filter_reports,
    load_any,
    parse_aggs,
    parse_where,
)
from repro.cli import main
from repro.errors import ConfigurationError

GRID = sweep_grid(["mis", "matching"], [16], seeds=[0, 1, 2])


def canonical_grid(specs=GRID):
    session = Session()
    return [session.canonical(s) for s in specs]


def shard_bytes(root):
    return [open(p, "rb").read() for p in ResultStore.open(root).shard_paths()]


class TestResultStore:
    def test_create_open_roundtrip(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore.create(root, shards=4)
        assert ResultStore.open(root).shards == 4
        store.close()

    def test_create_refuses_existing(self, tmp_path):
        root = str(tmp_path / "store")
        ResultStore.create(root)
        with pytest.raises(StoreError, match="already exists"):
            ResultStore.create(root)

    def test_open_missing_is_clean_error(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            ResultStore.open(str(tmp_path / "nope"))

    def test_existing_shard_count_wins_on_reopen(self, tmp_path):
        # Resuming with a different --shards must not re-route rows.
        root = str(tmp_path / "store")
        ResultStore.create(root, shards=3)
        assert ResultStore.open_or_create(root, shards=8).shards == 3

    def test_shard_routing_is_stable_and_in_range(self):
        store = ResultStore("unused", shards=4)
        for spec in canonical_grid():
            idx = store.shard_for(spec)
            assert 0 <= idx < 4
            assert idx == store.shard_for(spec)  # pure function of the spec

    def test_append_and_read_back(self, tmp_path):
        root = str(tmp_path / "store")
        reports = Session().run_many(GRID, store=root, shards=2)
        store = ResultStore.open(root)
        assert store.count() == len(GRID)
        got = {r.spec.content_hash() for r in store.iter_reports()}
        assert got == {r.spec.content_hash() for r in reports}

    def test_duplicate_report_detected(self, tmp_path):
        root = str(tmp_path / "store")
        with ResultStore.create(root) as store:
            [report] = Session().run_many(GRID[:1])
            store.append(report)
            store.append(report)
        with pytest.raises(StoreError, match="duplicate"):
            ResultStore.open(root).reports_by_hash()


class TestManifest:
    def test_create_and_reload(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        grid = canonical_grid()
        with Manifest.open(path, grid, store="store", shards=2) as mani:
            mani.mark_done(0, grid[0])
            mani.mark_done(1, grid[1])
        loaded = Manifest.load(path)
        assert loaded.done_rows == 2
        assert loaded.store == "store" and loaded.shards == 2
        assert [s.content_hash() for s in loaded.specs] == [
            s.content_hash() for s in grid
        ]
        assert list(loaded.remaining()) == grid[2:]
        assert not loaded.complete

    def test_out_of_order_done_rejected(self, tmp_path):
        grid = canonical_grid()
        with Manifest.open(str(tmp_path / "m.jsonl"), grid, store=None) as mani:
            with pytest.raises(ManifestError, match="in-order"):
                mani.mark_done(2, grid[2])

    def test_grid_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        Manifest.open(path, canonical_grid(), store=None).close()
        other = canonical_grid(sweep_grid(["mis"], [24], seeds=[0]))
        with pytest.raises(ManifestError, match="different grid"):
            Manifest.open(path, other, store=None)

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        grid = canonical_grid()
        with Manifest.open(path, grid, store=None) as mani:
            mani.mark_done(0, grid[0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "done", "row": 1')  # kill mid-append
        assert Manifest.load(path).done_rows == 1

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        grid = canonical_grid()
        Manifest.open(path, grid, store=None).close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("garbage\n")
            fh.write(json.dumps({"event": "done", "row": 0}) + "\n")
        with pytest.raises(ManifestError, match="not JSON"):
            Manifest.load(path)

    def test_manifest_requires_store(self):
        with pytest.raises(ConfigurationError, match="requires store"):
            Session().run_many(GRID, manifest="m.jsonl")


class TestResumeEquivalence:
    """The headline guarantee: interrupt at row k, resume, and the store
    bytes are identical to a from-scratch run — for interruption both by
    max_rows and by an exception mid-parallel-sweep."""

    def run_scratch(self, tmp_path, jobs=1):
        root = str(tmp_path / "scratch")
        Session().run_many(GRID, jobs=jobs, store=root, shards=2,
                           manifest=str(tmp_path / "scratch.jsonl"))
        return root

    def test_max_rows_interrupt_then_resume(self, tmp_path):
        scratch = self.run_scratch(tmp_path)
        root = str(tmp_path / "store")
        mani_path = str(tmp_path / "m.jsonl")
        partial = Session().run_many(
            GRID, store=root, shards=2, manifest=mani_path, max_rows=2
        )
        assert len(partial) == 2
        assert Manifest.load(mani_path).done_rows == 2
        resumed = Session().run_many(
            GRID, store=root, shards=2, manifest=mani_path
        )
        assert len(resumed) == len(GRID)
        assert shard_bytes(root) == shard_bytes(scratch)
        # the resumed prefix is served from the store, not recomputed, yet
        # is indistinguishable in the report list
        serial = Session().run_many(GRID)
        assert [r.to_json_line() for r in resumed] == [
            r.to_json_line() for r in serial
        ]

    def test_exception_interrupt_then_resume_parallel(self, tmp_path):
        # A progress callback that raises mid-parallel-sweep models the
        # operator hitting Ctrl-C: completed rows are already durable.
        scratch = self.run_scratch(tmp_path)
        root = str(tmp_path / "store")
        mani_path = str(tmp_path / "m.jsonl")
        count = 0

        def bomb(report):
            nonlocal count
            count += 1
            if count == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            with Session(pool="auto") as s:
                s.run_many(GRID, jobs=2, store=root, shards=2,
                           manifest=mani_path, progress=bomb)
        done = Manifest.load(mani_path).done_rows
        assert done == 3
        with Session(pool="auto") as s:
            resumed = s.run_many(GRID, jobs=2, store=root, shards=2,
                                 manifest=mani_path)
        assert len(resumed) == len(GRID)
        assert shard_bytes(root) == shard_bytes(scratch)

    def test_resume_of_complete_sweep_recomputes_nothing(self, tmp_path):
        root = str(tmp_path / "store")
        mani_path = str(tmp_path / "m.jsonl")
        Session().run_many(GRID, store=root, manifest=mani_path)
        ran = []
        Session().run_many(GRID, store=root, manifest=mani_path,
                           progress=ran.append)
        assert ran == []  # progress fires per *computed* row only
        assert ResultStore.open(root).count() == len(GRID)

    def test_out_of_sync_store_is_clean_error(self, tmp_path):
        root = str(tmp_path / "store")
        mani_path = str(tmp_path / "m.jsonl")
        Session().run_many(GRID, store=root, manifest=mani_path, max_rows=2)
        for p in ResultStore.open(root).shard_paths():
            open(p, "w").close()  # lose the store, keep the manifest
        with pytest.raises(ConfigurationError, match="out of sync"):
            Session().run_many(GRID, store=root, manifest=mani_path)


class TestQueryHelpers:
    @pytest.fixture()
    def reports(self):
        return Session().run_many(GRID)

    def test_parse_where_coerces_json_scalars(self):
        terms = parse_where(["n=16", "correct=true", "algorithm=mis"])
        assert terms == [("n", 16), ("correct", True), ("algorithm", "mis")]

    def test_parse_where_rejects_unknown_field(self):
        with pytest.raises(StoreError, match="unknown query field"):
            parse_where(["bogus=1"])

    def test_filter_conjunction(self, reports):
        kept = list(filter_reports(reports, parse_where(["algorithm=mis",
                                                         "seed=1"])))
        assert len(kept) == 1
        assert kept[0].spec.algorithm == "mis" and kept[0].spec.seed == 1

    def test_aggregate_grouped(self, reports):
        headers, rows = aggregate(
            reports, ["algorithm"], parse_aggs(["count", "mean:rounds"])
        )
        assert headers == ["algorithm", "count", "mean(rounds)"]
        assert [r[0] for r in rows] == ["mis", "matching"]  # first-seen order
        assert all(r[1] == 3 for r in rows)

    def test_aggregate_overall(self, reports):
        headers, rows = aggregate(reports, [], parse_aggs(["count",
                                                           "max:messages"]))
        assert rows == [[len(GRID), max(r.messages for r in reports)]]

    def test_parse_aggs_rejects_malformed(self):
        with pytest.raises(StoreError, match="unknown aggregate"):
            parse_aggs(["median:rounds"])
        with pytest.raises(StoreError, match="needs fn:field"):
            parse_aggs(["mean"])

    def test_field_value_covers_spec_and_outcome(self, reports):
        r = reports[0]
        assert field_value(r, "algorithm") == "mis"
        assert field_value(r, "rounds") == r.rounds
        assert field_value(r, "violations") == len(r.violations)

    def test_load_any_reads_store_and_jsonl(self, tmp_path, reports):
        root = str(tmp_path / "store")
        flat = str(tmp_path / "flat.jsonl")
        Session().run_many(GRID, store=root, shards=2, out=flat)
        assert len(list(load_any(root))) == len(GRID)
        assert len(list(load_any(flat))) == len(GRID)
        with pytest.raises(StoreError, match="no result store"):
            list(load_any(str(tmp_path / "missing")))


class TestQueryCli:
    @pytest.fixture()
    def store(self, tmp_path):
        root = str(tmp_path / "store")
        Session().run_many(GRID, store=root, shards=2)
        return root

    def test_table_defaults(self, store, capsys):
        assert main(["query", store]) == 0
        out = capsys.readouterr().out
        assert "query: 6 of 6 reports" in out
        assert "mis" in out and "matching" in out

    def test_where_and_jsonl(self, store, capsys):
        assert main(["query", store, "--where", "algorithm=mis",
                     "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(json.loads(ln)["spec"]["algorithm"] == "mis"
                   for ln in lines)

    def test_group_by_agg(self, store, capsys):
        assert main(["query", store, "--group-by", "algorithm",
                     "--agg", "count", "--agg", "mean:rounds"]) == 0
        out = capsys.readouterr().out
        assert "mean(rounds)" in out and "query: 6 reports" in out

    def test_select_and_limit(self, store, capsys):
        assert main(["query", store, "--select", "algorithm,rounds",
                     "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "query: 2 of 6 reports" in out

    def test_bad_field_exits_2(self, store, capsys):
        assert main(["query", store, "--where", "bogus=1"]) == 2
        assert "unknown query field" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope")]) == 2
        assert "no result store" in capsys.readouterr().err


class TestSweepCliStoreFlow:
    def test_store_resume_flow(self, tmp_path, capsys):
        store = str(tmp_path / "S")
        argv = ["sweep", "--algos", "mis", "--ns", "16", "--seeds", "0:4",
                "--store", store, "--shards", "2"]
        assert main(argv + ["--max-rows", "2"]) == 0
        captured = capsys.readouterr()
        assert "2/4 runs done" in captured.out
        assert "--resume" in captured.out
        manifest = f"{store}/manifest.jsonl"
        assert main(["sweep", "--resume", manifest]) == 0
        assert "4/4 runs done" in capsys.readouterr().out
        assert ResultStore.open(store).count() == 4

    def test_resume_rejects_axis_flags(self, tmp_path, capsys):
        assert main(["sweep", "--resume", "m.jsonl", "--algos", "mis"]) == 2
        assert "drop --algos" in capsys.readouterr().err

    def test_sweep_without_algos_or_resume_exits_2(self, capsys):
        assert main(["sweep", "--ns", "16"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_manifest_without_store_exits_2(self, capsys):
        assert main(["sweep", "--algos", "mis", "--ns", "16",
                     "--manifest", "m.jsonl"]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_resume_missing_manifest_exits_2(self, tmp_path, capsys):
        assert main(["sweep", "--resume", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err
