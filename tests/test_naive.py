"""Naive direct-communication baselines: correct but ∆-bound."""

import pytest

from repro.baselines.naive import naive_bfs, naive_broadcast_tree_setup_rounds, naive_mis
from repro.baselines.sequential import bfs_tree, is_maximal_independent_set
from repro.graphs import generators
from tests.conftest import make_runtime


class TestNaiveBFS:
    def test_correct_distances(self):
        g = generators.grid(4, 5)
        rt = make_runtime(g.n, strict=False)
        res = naive_bfs(rt, g, 0)
        dist, parent = res.output
        expected, _ = bfs_tree(g, 0)
        assert dist == expected

    def test_star_pays_for_max_degree(self):
        """On a star the naive frontier exchange needs ⌈∆/cap⌉ rounds per
        phase — measurably worse than the capacity-per-phase of the clever
        algorithm's multicast trees at larger n."""
        g = generators.star(64)
        rt = make_runtime(64, strict=False)
        res = naive_bfs(rt, g, 0)
        cap = rt.net.capacity
        assert res.rounds >= (64 - 1) // cap

    def test_capacity_respected_by_batching(self):
        g = generators.star(64)
        rt = make_runtime(64)  # STRICT: batching must hold the budget
        naive_bfs(rt, g, 0)
        assert rt.net.stats.violation_count == 0


class TestNaiveMIS:
    def test_valid_mis(self):
        for seed, maker in [
            (1, lambda: generators.gnp(20, 0.2, seed=1)),
            (2, lambda: generators.star(16)),
            (3, lambda: generators.cycle(15)),
        ]:
            g = maker()
            rt = make_runtime(g.n, seed=seed, strict=False)
            res = naive_mis(rt, g)
            assert is_maximal_independent_set(g, res.output)

    def test_rounds_positive(self):
        g = generators.cycle(12)
        rt = make_runtime(12, strict=False)
        assert naive_mis(rt, g).rounds > 0


class TestNaiveBroadcastSetup:
    def test_star_setup_much_slower_than_lemma51(self):
        """The ablation behind Lemma 5.1: joining every neighbour directly
        costs Θ(∆/log n) on a star; the orientation-based setup doesn't."""
        from repro.algorithms import build_broadcast_trees

        n = 64
        g = generators.star(n)

        rt_naive = make_runtime(n, strict=False, lightweight_sync=True)
        naive_rounds = naive_broadcast_tree_setup_rounds(rt_naive, g)

        rt_smart = make_runtime(n, strict=False, lightweight_sync=True)
        bt = build_broadcast_trees(rt_smart, g)
        smart_rounds = bt.setup_rounds

        assert smart_rounds < naive_rounds
