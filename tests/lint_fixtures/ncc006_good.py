# reprolint: path=src/repro/api/fixture_workerlib.py
"""NCC006 fixture: per-run state on objects, constants stay immutable."""

MAX_REQUEUES = 2  # scalars are fine
POOL_KINDS = ("persistent", "fork")  # immutable tuple
FIELDS = {"rounds": True, "messages": True}  # ALL_CAPS write-once table


class WorkerState:
    """State lives on instances constructed after fork."""

    def __init__(self):
        self.result_cache = {}
        self.pending = []

    def log_to(self, path):
        return open(path, "a")  # handles open per run, not at import
