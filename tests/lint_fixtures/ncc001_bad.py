# reprolint: path=src/repro/graphs/fixture_mod.py
"""NCC001 fixture: every determinism violation the rule knows."""
import datetime
import os
import random
import time


def unseeded():
    return random.Random()  # unseeded: OS-entropy seed


def directly_seeded(seed):
    return random.Random(seed)  # library code must go through seeding.py


def global_stream():
    return random.randint(0, 7)  # process-global Mersenne stream


def wallclock():
    return time.time(), datetime.datetime.now(), os.urandom(8)


def library_timing():
    return time.perf_counter()  # timing belongs to repro/telemetry/


def set_iteration():
    out = []
    for x in {3, 1, 2}:  # set-literal iteration order is salted
        out.append(x)
    return out
