# reprolint: path=src/repro/api/fixture_workerlib.py
"""NCC006 fixture: ambient state in the pool-worker import surface."""
import collections
import os

_result_cache = {}  # mutable module-level container
pending = []  # another one
counts = collections.Counter()  # constructor spelling

_log = open(os.devnull, "w")  # module-level handle: shared offset after fork
