# reprolint: path=src/repro/api/manifest.py
"""NCC004 fixture: derive-don't-mutate, and sorted canonical JSON."""
import json


def retag(spec, tag):
    return spec.with_(scenario=tag)  # derive a changed spec


def write_meta(fh, meta):
    json.dump(meta, fh, sort_keys=True)


def render(meta):
    return json.dumps(meta, indent=2, sort_keys=True)
