# reprolint: path=src/repro/api/manifest.py
"""NCC004 fixture: frozen-spec mutation and unsorted canonical JSON."""
import json


def retag(spec, tag):
    object.__setattr__(spec, "scenario", tag)  # mutating a frozen spec
    return spec


def write_meta(fh, meta):
    json.dump(meta, fh)  # canonical module: insertion order leaks into bytes


def render(meta):
    return json.dumps(meta, indent=2)  # same defect, dumps flavour
