# reprolint: path=src/repro/primitives/fixture_prim.py
"""NCC005 fixture: a primitive reimplementing and poking walk internals."""


class ShortcutEngine:
    def _send_walk(self, outboxes):  # forking the canonical send walk
        return outboxes

    def _recv_walk(self, inboxes):  # forking the canonical recv walk
        return inboxes


def sneaky(engine, outboxes):
    return engine._send_walk(outboxes)  # walk internals from outside
