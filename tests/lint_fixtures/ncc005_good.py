# reprolint: path=src/repro/primitives/fixture_prim.py
"""NCC005 fixture: primitives go through the public exchange surface."""


def well_behaved(net, outboxes):
    return net.exchange(outboxes)  # the public round surface
