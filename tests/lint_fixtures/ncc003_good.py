# reprolint: path=src/repro/algorithms/fixture_alg.py
"""NCC003 fixture: a self-registering algorithm module going through the
registry, never the shim."""
from repro.registry import get_algorithm, register_algorithm


def run(runtime):
    return get_algorithm("mst").fn(runtime)


register_algorithm(
    name="fixture-alg",
    fn=run,
    kind="algorithm",
)
