# reprolint: path=src/repro/graphs/fixture_mod.py
"""NCC001 fixture: the compliant spellings of everything the bad twin does."""
from repro.seeding import derived_rng, seeded_rng


def explicitly_seeded(seed):
    return seeded_rng(seed)


def tagged(seed, n):
    return derived_rng("fixture", seed, n)


def wall_from_report(report):
    # reading a *recorded* timing-extras field is fine; taking a clock
    # reading here would not be (see the bad twin's library_timing)
    return report.extras.get("wall")


def sorted_iteration():
    out = []
    for x in sorted({3, 1, 2}):  # sorted() fixes the order
        out.append(x)
    return out
