# reprolint: path=src/repro/graphs/fixture_mod.py
"""NCC001 fixture: the compliant spellings of everything the bad twin does."""
from repro.seeding import derived_rng, seeded_rng


def explicitly_seeded(seed):
    return seeded_rng(seed)


def tagged(seed, n):
    return derived_rng("fixture", seed, n)


def monotonic_ok():
    import time

    return time.monotonic(), time.perf_counter()  # durations, not identity


def sorted_iteration():
    out = []
    for x in sorted({3, 1, 2}):  # sorted() fixes the order
        out.append(x)
    return out
