# reprolint: path=src/repro/primitives/aggregation.py
"""NCC002 fixture: boxing in a hot-path module, outside any fallback."""


class Message:
    def __init__(self, src, dst, payload):
        self.src, self.dst, self.payload = src, dst, payload


def hot_loop(inbox, out):
    for item in inbox.payloads():  # per-element boxing on the hot path
        out.append(Message(0, 1, item))  # Message construction on the hot path
    return out
