# reprolint: path=src/repro/algorithms/fixture_alg.py
"""NCC003 fixture: an algorithm module that never self-registers, and a
consumer importing the deprecated TABLE1_RUNNERS shim."""
from repro.analysis.tables import TABLE1_RUNNERS  # deprecated shim import


def run(runtime):
    return TABLE1_RUNNERS["MST"](runtime)
