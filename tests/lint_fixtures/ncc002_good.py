# reprolint: path=src/repro/primitives/aggregation.py
"""NCC002 fixture: columnar hot path; boxing only in annotated fallbacks."""


class Message:
    def __init__(self, src, dst, payload):
        self.src, self.dst, self.payload = src, dst, payload


def hot_loop(inbox, out):
    arr = inbox.payload_array()  # columnar read: no per-element objects
    out.extend(arr.tolist())
    return out


def boxed_fallback(inbox, out):
    # The function name marks the degraded path; boxing is allowed here.
    for item in inbox.payloads():
        out.append(Message(0, 1, item))
    return out


def lower_columns(inbox, out):  # reprolint: fallback
    for item in inbox.payloads():
        out.append(item)
    return out
