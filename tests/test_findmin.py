"""FindMin: edge sketching and lightest-outgoing-edge search."""

import random

import pytest

from repro import InputGraph
from repro.algorithms.findmin import find_lightest_edges, make_sketcher
from repro.graphs import generators, weights
from tests.conftest import make_runtime


def brute_force_lightest(g, leader_of, c):
    """Min (weight, edge-id) outgoing edge of component c, or None."""
    best = None
    for u in range(g.n):
        if leader_of[u] != c:
            continue
        for v in g.neighbors(u):
            if leader_of[v] != c:
                key = (g.weight(u, v), g.edge_id(u, v))
                if best is None or key < best[0]:
                    a, b = min(u, v), max(u, v)
                    best = (key, (g.weight(u, v), a, b))
    return None if best is None else best[1]


class TestEdgeSketcher:
    def make(self, n=16, seed=0):
        g = weights.with_random_weights(
            generators.random_connected(n, 0.2, seed=seed), seed=seed + 1
        )
        rt = make_runtime(n, seed=seed)
        return g, rt, make_sketcher(rt, g, tag="t")

    def test_kappa_decode_roundtrip(self):
        g, rt, sk = self.make()
        for u, v in g.edges():
            w, a, b = sk.decode(sk.kappa(u, v))
            assert (w, a, b) == (g.weight(u, v), u, v)

    def test_kappa_strictly_orders_edges(self):
        g, rt, sk = self.make()
        kappas = [sk.kappa(u, v) for u, v in g.edges()]
        assert len(set(kappas)) == len(kappas)
        assert max(kappas) < sk.kappa_max()

    def test_arc_bits_cached_and_stable(self):
        g, rt, sk = self.make()
        u, v = g.edges()[0]
        assert sk.arc_bits(u, v) == sk.arc_bits(u, v)
        assert sk.arc_bits(u, v) != sk.arc_bits(v, u) or True  # may collide; no crash

    def test_local_parities_xor_of_qualifying(self):
        g, rt, sk = self.make()
        u = max(range(g.n), key=g.degree)
        full_up, full_down = sk.local_parities(u, 0, sk.kappa_max())
        exp_up = exp_down = 0
        for v in g.neighbors(u):
            exp_up ^= sk.arc_bits(u, v)
            exp_down ^= sk.arc_bits(v, u)
        assert (full_up, full_down) == (exp_up, exp_down)

    def test_empty_range_gives_zero(self):
        g, rt, sk = self.make()
        assert sk.local_parities(0, 5, 5) == (0, 0)


class TestFindLightestEdges:
    def run_case(self, g, leader_of, seed=1):
        rt = make_runtime(g.n, seed=seed)
        sk = make_sketcher(rt, g, tag="t")
        # component trees: members join their leader's group
        memberships = {
            u: [leader_of[u]] for u in range(g.n) if leader_of[u] != u
        }
        trees = rt.multicast_setup(memberships)
        active = set(leader_of)
        out = find_lightest_edges(rt, g, leader_of, trees, sk, active)
        assert rt.net.stats.violation_count == 0
        return out

    def test_singletons_find_min_incident_edge(self):
        g = weights.with_unique_weights(generators.cycle(8), seed=2)
        leader_of = list(range(8))
        out = self.run_case(g, leader_of)
        for c in range(8):
            assert out.lightest[c] == brute_force_lightest(g, leader_of, c)

    def test_two_components(self):
        g = weights.with_unique_weights(
            generators.random_connected(16, 0.2, seed=3), seed=4
        )
        leader_of = [0 if u < 8 else 8 for u in range(16)]
        out = self.run_case(g, leader_of)
        for c in (0, 8):
            assert out.lightest[c] == brute_force_lightest(g, leader_of, c)

    def test_component_without_outgoing_edges_absent(self):
        # two disconnected cliques, each a single component
        g = weights.with_unique_weights(generators.disjoint_cliques(12, 6), seed=5)
        leader_of = [0 if u < 6 else 6 for u in range(12)]
        out = self.run_case(g, leader_of)
        assert out.lightest == {}

    def test_tie_weights_broken_by_edge_id(self):
        g = weights.with_constant_weights(generators.cycle(10))
        leader_of = list(range(10))
        out = self.run_case(g, leader_of)
        for c in range(10):
            assert out.lightest[c] == brute_force_lightest(g, leader_of, c)

    def test_random_partitions(self):
        rng = random.Random(7)
        g = weights.with_unique_weights(
            generators.random_connected(20, 0.15, seed=8), seed=9
        )
        for trial in range(3):
            # random partition into 4 groups, leader = min id of group
            buckets = [rng.randrange(4) for _ in range(20)]
            leaders = {}
            for b in set(buckets):
                leaders[b] = min(u for u in range(20) if buckets[u] == b)
            leader_of = [leaders[buckets[u]] for u in range(20)]
            out = self.run_case(g, leader_of, seed=trial)
            for c in set(leader_of):
                assert out.lightest.get(c) == brute_force_lightest(g, leader_of, c)
