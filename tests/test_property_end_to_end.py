"""Property-based end-to-end tests: random graphs through every algorithm.

Hypothesis generates arbitrary small graphs (connected or not, empty,
dense, weird degree distributions); every algorithm must produce a valid
output under STRICT capacity enforcement.  These complement the
family-parametrized tests with unstructured adversarial shapes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InputGraph
from repro.baselines import sequential as seq
from tests.conftest import make_runtime

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # test classes are stateless; --engine=both replay parametrizes the
        # autouse engine fixture, giving one class instance per engine
        HealthCheck.differing_executors,
    ],
)


@st.composite
def small_graphs(draw, min_n=2, max_n=18):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=min(len(possible), 40))
        if possible
        else st.just([])
    )
    return InputGraph(n, edges)


@st.composite
def weighted_graphs(draw):
    g = draw(small_graphs())
    weights = {
        e: draw(st.integers(min_value=1, max_value=50)) for e in g.edges()
    }
    return InputGraph(g.n, g.edges(), weights)


class TestEndToEndProperties:
    @given(weighted_graphs())
    @settings(**SETTINGS)
    def test_mst_always_matches_kruskal(self, g):
        from repro.algorithms import MSTAlgorithm

        rt = make_runtime(g.n, seed=1)
        res = MSTAlgorithm(rt, g).run()
        assert res.edges == seq.kruskal_msf(g)
        assert rt.net.stats.violation_count == 0

    @given(small_graphs())
    @settings(**SETTINGS)
    def test_orientation_always_valid(self, g):
        from repro.algorithms import OrientationAlgorithm

        rt = make_runtime(g.n, seed=2)
        ori = OrientationAlgorithm(rt, g).run()
        seen = set()
        for u in range(g.n):
            for v in ori.out_neighbors[u]:
                e = (min(u, v), max(u, v))
                assert e not in seen
                seen.add(e)
        assert seen == set(g.edges())
        # acyclic by (level, id)
        for u in range(g.n):
            for v in ori.out_neighbors[u]:
                assert (ori.level[u], u) < (ori.level[v], v)

    @given(small_graphs())
    @settings(**SETTINGS)
    def test_mis_always_maximal_independent(self, g):
        from repro.algorithms import MISAlgorithm

        rt = make_runtime(g.n, seed=3)
        res = MISAlgorithm(rt, g).run()
        assert seq.is_maximal_independent_set(g, res.members)

    @given(small_graphs())
    @settings(**SETTINGS)
    def test_matching_always_maximal(self, g):
        from repro.algorithms import MatchingAlgorithm

        rt = make_runtime(g.n, seed=4)
        res = MatchingAlgorithm(rt, g).run()
        assert seq.is_maximal_matching(g, res.edges)

    @given(small_graphs())
    @settings(**SETTINGS)
    def test_coloring_always_proper_within_palette(self, g):
        from repro.algorithms import ColoringAlgorithm

        rt = make_runtime(g.n, seed=5)
        res = ColoringAlgorithm(rt, g).run()
        assert seq.is_proper_coloring(g, res.colors)
        assert res.colors_used() <= res.palette_size

    @given(small_graphs(), st.integers(min_value=0, max_value=17))
    @settings(**SETTINGS)
    def test_bfs_always_matches_oracle(self, g, src_raw):
        from repro.algorithms import BFSAlgorithm

        source = src_raw % g.n
        rt = make_runtime(g.n, seed=6)
        res = BFSAlgorithm(rt, g).run(source)
        expected, _ = seq.bfs_tree(g, source)
        assert res.dist == expected

    @given(small_graphs())
    @settings(**SETTINGS)
    def test_components_always_match_oracle(self, g):
        from repro.algorithms import ConnectedComponentsAlgorithm
        from repro.graphs import properties

        rt = make_runtime(g.n, seed=7)
        res = ConnectedComponentsAlgorithm(rt, g).run()
        comps = properties.connected_components(g)
        expected = [0] * g.n
        for comp in comps:
            m = min(comp)
            for u in comp:
                expected[u] = m
        assert res.labels == expected
