"""Typed payload columns: declared dtypes end-to-end.

Primitives may declare a payload dtype at submission time (int64 scalars or
fixed-width structs); the builder, engine, and routers then keep payloads
in numpy columns from ``add_array`` through delivery, and a clean typed
round constructs zero ``Message`` objects *and* zero Python payload boxes.
Object payloads remain the fallback everywhere — these tests pin that the
two representations are observably indistinguishable (values, rounds,
messages, bits) and that the zero-object gates hold.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro.ncc.message as message_mod
from repro.config import Enforcement, NCCConfig
from repro.errors import ProtocolError
from repro.ncc.message import (
    BatchBuilder,
    InboxBatch,
    message_construction_count,
    payload_bits,
    payload_box_count,
    set_typed_payloads,
    typed_payload_bits,
    typed_payloads_enabled,
)
from repro.ncc.network import NCCNetwork
from repro.primitives.aggregation import (
    INJECT_DTYPE,
    AggregationProblem,
    run_aggregation,
)
from repro.primitives.direct import send_chunked, send_direct
from repro.primitives.functions import MAX, MIN, SUM, XOR, xor_count
from repro.runtime import NCCRuntime

ENGINES = ("reference", "batched")

PAIR_DTYPE = np.dtype([("a", "i8"), ("b", "i8")])
TAGGED_DTYPE = np.dtype([("tag", "U12"), ("x", "i8"), ("ok", "?"), ("w", "f8")])


@pytest.fixture
def typed_on():
    prev = set_typed_payloads(True)
    yield
    set_typed_payloads(prev)


def _config(engine, mode=Enforcement.COUNT, *, lightweight=True, seed=7):
    extras = {"lightweight_sync": True} if lightweight else {}
    return NCCConfig(seed=seed, enforcement=mode, engine=engine, extras=extras)


# ----------------------------------------------------------------------
# Vectorized sizing
# ----------------------------------------------------------------------
class TestVectorizedSizing:
    def test_int64_column_matches_scalar_rule(self):
        rng = random.Random(0)
        values = [0, 1, -1, 255, -256, 2**62, -(2**62), -(2**63), 2**63 - 1]
        values += [rng.randrange(-(2**63), 2**63) for _ in range(200)]
        arr = np.asarray(values, dtype=np.int64)
        got = typed_payload_bits(arr)
        want = [payload_bits(v) for v in values]
        assert got.tolist() == want

    def test_struct_column_matches_tuple_rule(self):
        rows = [
            ("x", 5, True, 1.5),
            ("longer-tag!!", -77, False, 0.0),
            ("", 0, True, -3.25),
            ("eightchr", 2**40, False, 9.0),
        ]
        arr = np.array(rows, dtype=TAGGED_DTYPE)
        got = typed_payload_bits(arr)
        want = [payload_bits(r) for r in rows]
        assert got.tolist() == want

    def test_inject_dtype_sizes_like_tuples(self):
        rows = [("I", 3, 17, -40), ("I", 0, 2**30, 1)]
        arr = np.array(rows, dtype=INJECT_DTYPE)
        assert typed_payload_bits(arr).tolist() == [
            payload_bits(r) for r in rows
        ]


# ----------------------------------------------------------------------
# Builder-level behavior
# ----------------------------------------------------------------------
class TestTypedBuilder:
    def test_add_array_accounts_like_object_adds(self, typed_on):
        typed = BatchBuilder(kind="t", dtype=np.int64)
        typed.add_array(3, [1, 2, 5], [10, -200, 0])
        obj = BatchBuilder(kind="t")
        for dst, v in zip([1, 2, 5], [10, -200, 0]):
            obj.add(3, dst, v)
        assert len(typed) == len(obj) == 3
        assert typed._bits_sum == obj._bits_sum
        assert typed._bits_max == obj._bits_max

    def test_add_arrays_groups_by_sender(self, typed_on):
        b = BatchBuilder(kind="t", dtype=np.int64)
        b.add_arrays([4, 1, 4, 1], [7, 8, 9, 10], [1, 2, 3, 4])
        assert len(b) == 4
        batches = b.batches()
        assert sorted(batches) == [1, 4]

    def test_mixing_object_adds_degrades_all_groups(self, typed_on):
        b = BatchBuilder(kind="t", dtype=np.int64)
        b.add_array(0, [1, 2], [5, 6])
        boxes = payload_box_count()
        b.add(3, 4, ("obj", 1))  # degrades the typed groups
        assert payload_box_count() - boxes == 2
        assert b._dtype is None
        assert len(b) == 3

    def test_unsupported_dtype_rejected(self, typed_on):
        for bad in (np.float64, np.uint32, np.dtype("O"),
                    np.dtype([("n", "i8", (2,))])):
            with pytest.raises(TypeError, match="unsupported payload dtype"):
                BatchBuilder(dtype=bad)

    def test_prebuilt_value_array_dtype_must_match(self, typed_on):
        b = BatchBuilder(dtype=np.int64)
        with pytest.raises(TypeError):
            b.add_array(0, [1], np.asarray([1.5]))  # silent truncation guard

    def test_float_destinations_rejected(self, typed_on):
        b = BatchBuilder(dtype=np.int64)
        with pytest.raises(TypeError):
            b.add_array(0, np.asarray([1.5]), [3])

    def test_global_toggle_disables_declarations(self):
        prev = set_typed_payloads(False)
        try:
            assert not typed_payloads_enabled()
            b = BatchBuilder(dtype=np.int64)
            assert b._dtype is None  # declaration degraded; object layout
            b.add_array(0, [1, 2], np.asarray([5, 6], dtype=np.int64))
            assert len(b) == 2
        finally:
            set_typed_payloads(prev)

    def test_numpy_free_declaration_degrades(self, monkeypatch, typed_on):
        monkeypatch.setattr(message_mod, "_np", None)
        b = BatchBuilder(dtype="i8")
        assert b._dtype is None
        b.add(0, 1, 42)
        assert len(b) == 1


# ----------------------------------------------------------------------
# Engine-level typed delivery
# ----------------------------------------------------------------------
class TestTypedDelivery:
    def _sends(self, n):
        return [
            (u, (u * 5 + i) % n, (u, i * 3)) for u in range(n) for i in range(3)
        ]

    def test_typed_round_is_object_round(self, typed_on):
        """Same traffic through a declared dtype and through object tuples:
        identical inbox contents, stats, and rounds under both engines."""
        n = 32
        captured = {}
        for engine in ENGINES:
            for dtype in (PAIR_DTYPE, None):
                net = NCCNetwork(n, _config(engine))
                inbox = send_direct(net, self._sends(n), dtype=dtype)
                captured[(engine, dtype is None)] = (
                    [
                        (d, [(m.src, tuple(m.payload)) for m in msgs])
                        for d, msgs in inbox.items()
                    ],
                    net.stats.comparable(),
                    net.round_index,
                )
        assert len(set(map(repr, captured.values()))) == 1

    def test_typed_batched_round_zero_objects(self, typed_on):
        n = 32
        net = NCCNetwork(n, _config("batched"))
        m0, b0 = message_construction_count(), payload_box_count()
        inbox = send_direct(net, self._sends(n), dtype=PAIR_DTYPE)
        assert message_construction_count() == m0
        assert payload_box_count() == b0
        box = next(iter(inbox.values()))
        assert type(box) is InboxBatch
        arr = box.payload_array()
        assert arr is not None and arr.dtype == PAIR_DTYPE
        # Reading the array is free; element access boxes lazily.
        assert payload_box_count() == b0
        p = box.payloads()
        assert payload_box_count() == b0 + len(p)
        assert all(type(x) is tuple for x in p)

    def test_unconvertible_payloads_fall_back(self, typed_on):
        n = 16
        sends = [(0, 1, (1, 2)), (0, 2, ("not", "ints"))]
        for engine in ENGINES:
            net = NCCNetwork(n, _config(engine))
            inbox = send_direct(net, sends, dtype=PAIR_DTYPE)
            assert inbox[1][0].payload == (1, 2)
            assert inbox[2][0].payload == ("not", "ints")

    def test_send_chunked_typed_matches_object(self, typed_on):
        n = 16
        per_source = {
            u: ([(u + i + 1) % n for i in range(5)], [(u, i) for i in range(5)])
            for u in range(0, n, 2)
        }
        results = {}
        for dtype in (PAIR_DTYPE, None):
            net = NCCNetwork(n, _config("batched"))
            rounds = []
            for inbox in send_chunked(net, per_source, 2, dtype=dtype):
                rounds.append(
                    sorted(
                        (d, m.src, tuple(m.payload))
                        for d, msgs in inbox.items()
                        for m in msgs
                    )
                )
            results[dtype is None] = (rounds, net.stats.comparable())
        assert results[True] == results[False]

    def test_typed_bits_agg_matches_object(self, typed_on):
        """Delivered typed spans aggregate receive-side bits identically to
        boxed payloads (the enforcement paths consume bits_agg)."""
        n = 16
        stats = {}
        for dtype in (PAIR_DTYPE, None):
            net = NCCNetwork(n, _config("batched", Enforcement.STRICT))
            send_direct(net, self._sends(n), dtype=dtype)
            stats[dtype is None] = net.stats.comparable()
        assert stats[True] == stats[False]


# ----------------------------------------------------------------------
# Combining router typed kernel
# ----------------------------------------------------------------------
class TestTypedCombiningRouter:
    def _router(self, net, bf, fn, **kw):
        from repro.butterfly.routing import CombiningRouter

        return CombiningRouter(
            net,
            bf,
            rank_of=lambda g: (g * 2654435761) % 1009,
            target_col_of=lambda g: (g * 40503) % bf.columns,
            combine=fn.combine,
            ufunc=fn.ufunc,
            **kw,
        )

    @pytest.mark.parametrize("fn", [SUM, MIN, MAX, XOR], ids=lambda f: f.name)
    def test_typed_kernel_matches_object_route(self, fn, typed_on):
        n = 32
        rng = random.Random(13)
        packets = [
            (rng.randrange(n), rng.randrange(10), rng.randrange(1, 500))
            for _ in range(150)
        ]
        results = {}
        for typed in (True, False):
            rt = NCCRuntime(n, _config("batched"))
            router = self._router(rt.net, rt.bf, fn)
            if typed:
                router.inject_array(
                    [p[0] for p in packets],
                    [p[1] for p in packets],
                    [p[2] for p in packets],
                )
            else:
                for col, g, v in packets:
                    router.inject(col, g, v)
            res = router.run()
            results[typed] = (res.results, res.rounds, rt.net.stats.comparable())
        assert results[True] == results[False]

    def test_inject_array_validation(self, typed_on):
        rt = NCCRuntime(16, _config("batched"))
        router = self._router(rt.net, rt.bf, SUM)
        with pytest.raises(ValueError, match="column"):
            router.inject_array([999], [1], [2])
        with pytest.raises(ValueError, match="parallel"):
            router.inject_array([1, 2], [1], [2])
        router.inject_array([], [], [])  # empty is a no-op
        router.inject_array([0], [1], [2])
        router.run()
        with pytest.raises(ProtocolError):
            router.inject_array([0], [1], [2])

    def test_tree_recording_falls_back_to_object_path(self, typed_on):
        """record_trees is object-path-only; typed injections are boxed and
        the trees recorded match object injections exactly."""
        n = 16
        trees = {}
        for typed in (True, False):
            rt = NCCRuntime(n, _config("batched"))
            router = self._router(rt.net, rt.bf, SUM, record_trees=True)
            if typed:
                router.inject_array([0, 3, 9], [1, 1, 2], [5, 6, 7])
            else:
                for col, g, v in [(0, 1, 5), (3, 1, 6), (9, 2, 7)]:
                    router.inject(col, g, v)
            res = router.run()
            assert res.trees is not None
            trees[typed] = (
                sorted(res.trees.root.items()),
                sorted(
                    (g, sorted((p, tuple(c)) for p, c in kids.items()))
                    for g, kids in res.trees.children.items()
                ),
                res.results,
            )
        assert trees[True] == trees[False]


# ----------------------------------------------------------------------
# Whole-primitive equivalence + the zero-object acceptance gates
# ----------------------------------------------------------------------
def _aggregation_problem(n, rng):
    memberships = {
        u: {g: rng.randrange(-50, 500) for g in rng.sample(range(12), 3)}
        for u in range(n)
    }
    targets = {g: rng.randrange(n) for g in range(12)}
    return AggregationProblem(memberships, targets, SUM)


def _run_agg(n, problem, engine, typed, mode=Enforcement.COUNT):
    prev = set_typed_payloads(typed)
    try:
        rt = NCCRuntime(n, _config(engine, mode))
        m0, b0 = message_construction_count(), payload_box_count()
        out = run_aggregation(rt.net, rt.bf, rt.shared, problem)
        return {
            "values": out.values,
            "by_target": out.by_target,
            "rounds": rt.net.round_index,
            "stats": rt.net.stats.comparable(),
            "constructed": message_construction_count() - m0,
            "boxed": payload_box_count() - b0,
        }
    finally:
        set_typed_payloads(prev)


class TestTypedAggregation:
    def test_typed_object_engines_all_agree(self):
        n = 32
        problem = _aggregation_problem(n, random.Random(4))
        runs = {
            (e, t): _run_agg(n, problem, e, t)
            for e in ENGINES
            for t in (True, False)
        }
        base = runs[("reference", False)]
        oracle = {}
        for u, gs in problem.memberships.items():
            for g, v in gs.items():
                oracle[g] = oracle.get(g, 0) + v
        assert base["values"] == oracle
        for key, run in runs.items():
            assert run["values"] == base["values"], key
            assert run["by_target"] == base["by_target"], key
            assert run["rounds"] == base["rounds"], key
            assert run["stats"] == base["stats"], key

    def test_typed_batched_run_constructs_nothing(self):
        """The acceptance gate: a whole typed aggregation under the batched
        engine constructs zero Message objects and zero payload boxes."""
        n = 64
        problem = _aggregation_problem(n, random.Random(9))
        run = _run_agg(n, problem, "batched", True)
        assert run["constructed"] == 0
        assert run["boxed"] == 0

    @pytest.mark.parametrize(
        "mode", tuple(Enforcement), ids=[m.value for m in Enforcement]
    )
    def test_typed_object_parity_all_modes(self, mode):
        n = 24
        problem = _aggregation_problem(n, random.Random(2))
        runs = {
            (e, t): _run_agg(n, problem, e, t, mode)
            for e in ENGINES
            for t in (True, False)
        }
        base = runs[("reference", False)]
        for key, run in runs.items():
            for fld in ("values", "by_target", "rounds", "stats"):
                assert run[fld] == base[fld], (key, fld)

    @pytest.mark.parametrize("fn", [MIN, MAX, XOR], ids=lambda f: f.name)
    def test_other_ufunc_aggregates(self, fn):
        n = 24
        rng = random.Random(8)
        memberships = {
            u: {g: rng.randrange(1, 1000) for g in rng.sample(range(6), 2)}
            for u in range(n)
        }
        problem = AggregationProblem(
            memberships, {g: g for g in range(6)}, fn
        )
        typed = _run_agg(n, problem, "batched", True)
        obj = _run_agg(n, problem, "batched", False)
        assert typed["values"] == obj["values"]
        assert typed["stats"] == obj["stats"]
        oracle = {}
        for u, gs in memberships.items():
            for g, v in gs.items():
                oracle[g] = fn.combine(oracle[g], v) if g in oracle else v
        assert typed["values"] == oracle

    def test_non_int_instances_keep_object_path(self):
        """String groups / tuple values can't ride int64 columns; the run
        falls back and still matches the oracle."""
        n = 16
        memberships = {
            u: {("g", u % 3): (u % 3, 1)} for u in range(n)
        }
        problem = AggregationProblem(
            memberships, {("g", i): i for i in range(3)}, xor_count
        )
        run = _run_agg(n, problem, "batched", True)
        oracle = {}
        for u, gs in memberships.items():
            for g, v in gs.items():
                oracle[g] = xor_count.combine(oracle[g], v) if g in oracle else v
        assert run["values"] == oracle

    def test_overflow_risk_keeps_object_path(self):
        """A SUM whose total absolute mass could exceed int64 must not use
        the typed kernel (reduceat would wrap); results stay exact."""
        n = 16
        big = 2**61
        memberships = {u: {0: big} for u in range(n)}
        problem = AggregationProblem(memberships, {0: 3}, SUM)
        run = _run_agg(n, problem, "batched", True)
        assert run["values"] == {0: n * big}  # exact, no int64 wrap

    def test_token_mode_keeps_object_path(self):
        """Without lightweight_sync the token wave shares rounds with data;
        typed flow must decline and results stay correct."""
        n = 16
        problem = _aggregation_problem(n, random.Random(5))
        outs = {}
        for typed in (True, False):
            prev = set_typed_payloads(typed)
            try:
                rt = NCCRuntime(n, _config("batched", lightweight=False))
                out = run_aggregation(rt.net, rt.bf, rt.shared, problem)
                outs[typed] = (out.values, rt.net.round_index,
                               rt.net.stats.comparable())
            finally:
                set_typed_payloads(prev)
        assert outs[True] == outs[False]


class TestTypedMulticast:
    def _setup(self, rt):
        memberships = {u: [u % 5, (u * 7) % 5] for u in range(rt.n)}
        return rt.multicast_setup(memberships), memberships

    def test_int_packets_typed_object_agree(self):
        n = 32
        runs = {}
        for engine in ENGINES:
            for typed in (True, False):
                prev = set_typed_payloads(typed)
                try:
                    rt = NCCRuntime(n, _config(engine))
                    trees, memberships = self._setup(rt)
                    out = rt.multicast(
                        trees,
                        {g: 1 << g for g in range(5)},
                        {g: g + 3 for g in range(5)},
                    )
                    runs[(engine, typed)] = (
                        out.received,
                        rt.net.round_index,
                        rt.net.stats.comparable(),
                    )
                finally:
                    set_typed_payloads(prev)
        base = runs[("reference", False)]
        for key, run in runs.items():
            assert run == base, key
        received, _, _ = base
        for u, gs in (
            (u, set(ms)) for u, ms in
            ((u, [u % 5, (u * 7) % 5]) for u in range(n))
        ):
            for g in gs:
                assert received[u][g] == 1 << g

    def test_typed_batched_multicast_constructs_nothing(self):
        n = 32
        prev = set_typed_payloads(True)
        try:
            rt = NCCRuntime(n, _config("batched"))
            trees, _ = self._setup(rt)
            m0 = message_construction_count()
            rt.multicast(
                trees, {g: g + 10 for g in range(5)}, {g: g for g in range(5)}
            )
            assert message_construction_count() == m0
        finally:
            set_typed_payloads(prev)

    def test_object_packets_still_work(self):
        n = 20
        prev = set_typed_payloads(True)
        try:
            rt = NCCRuntime(n, _config("batched"))
            trees, _ = self._setup(rt)
            out = rt.multicast(
                trees,
                {g: ("packet", g) for g in range(5)},
                {g: g for g in range(5)},
            )
            assert out.at(7)[7 % 5] == ("packet", 7 % 5)
        finally:
            set_typed_payloads(prev)
