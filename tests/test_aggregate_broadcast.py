"""Aggregate-and-Broadcast (Theorem 2.2), barrier, pipelined broadcast,
gather-to-root."""

import pytest

from repro import NCCRuntime
from repro.primitives import MAX, MIN, SUM, aggregate_and_broadcast, barrier, gather_to_root
from tests.conftest import make_runtime


class TestAggregateAndBroadcast:
    def test_sum_over_all_nodes(self, rt20):
        total = rt20.aggregate_and_broadcast({u: u for u in range(20)}, SUM)
        assert total == sum(range(20))

    def test_min_max(self, rt16):
        assert rt16.aggregate_and_broadcast({3: 7, 9: 2, 15: 11}, MIN) == 2
        assert rt16.aggregate_and_broadcast({3: 7, 9: 2, 15: 11}, MAX) == 11

    def test_subset_of_inputs(self, rt32):
        assert rt32.aggregate_and_broadcast({31: 5}, SUM) == 5

    def test_empty_returns_none(self, rt16):
        assert rt16.aggregate_and_broadcast({}, SUM) is None

    def test_rounds_exactly_2d_plus_2(self, strict_config):
        for n, d in [(16, 4), (20, 4), (64, 6)]:
            rt = NCCRuntime(n, strict_config)
            before = rt.net.round_index
            rt.aggregate_and_broadcast({u: 1 for u in range(n)}, SUM)
            assert rt.net.round_index - before == 2 * d + 2

    def test_non_power_of_two_partners_participate(self, strict_config):
        # nodes >= 2^d contribute through partners; their values must count.
        rt = NCCRuntime(20, strict_config)
        total = rt.aggregate_and_broadcast({u: 1 for u in range(16, 20)}, SUM)
        assert total == 4

    def test_single_node(self, strict_config):
        rt = NCCRuntime(1, strict_config)
        assert rt.aggregate_and_broadcast({0: 9}, SUM) == 9

    def test_strict_no_violations(self, rt32):
        rt32.aggregate_and_broadcast({u: u * u for u in range(32)}, SUM)
        assert rt32.net.stats.violation_count == 0


class TestBarrier:
    def test_barrier_costs_2d_plus_2(self, rt16):
        before = rt16.net.round_index
        rt16.barrier()
        assert rt16.net.round_index - before == 2 * 4 + 2

    def test_lightweight_barrier_same_rounds_no_messages(self):
        rt = make_runtime(16, lightweight_sync=True)
        before_r = rt.net.round_index
        before_m = rt.net.stats.messages
        rt.barrier()
        assert rt.net.round_index - before_r == 10
        assert rt.net.stats.messages == before_m


class TestPipelinedBroadcast:
    def test_all_nodes_receive_in_order(self, rt20):
        items = list(range(30))
        out = rt20.pipelined_broadcast(items)
        assert all(out[u] == items for u in range(20))

    def test_from_nonzero_source(self, rt16):
        out = rt16.pipelined_broadcast([7, 8], src=5)
        assert all(out[u] == [7, 8] for u in range(16))

    def test_empty_broadcast(self, rt16):
        out = rt16.pipelined_broadcast([])
        assert all(v == [] for v in out.values())

    def test_single_node_network(self, strict_config):
        rt = NCCRuntime(1, strict_config)
        assert rt.pipelined_broadcast([1, 2, 3])[0] == [1, 2, 3]

    def test_rounds_scale_with_items_over_rate(self, rt32):
        k = 100
        before = rt32.net.round_index
        rt32.pipelined_broadcast([0] * k)
        rounds = rt32.net.round_index - before
        rate = max(1, rt32.net.capacity // 2)
        # depth + k/rate with modest slack
        assert rounds <= 5 + k // rate + k  # loose upper guard
        assert rounds >= k // rate  # pipelining cannot beat the link rate

    def test_strict_capacity(self, rt32):
        rt32.pipelined_broadcast(list(range(64)))
        assert rt32.net.stats.violation_count == 0


class TestGatherToRoot:
    def test_collects_all_items_sorted_by_owner(self, rt20):
        items = {u: ("v", u) for u in (3, 7, 15, 18)}
        got = rt20.gather_to_root(items)
        assert got == [("v", 3), ("v", 7), ("v", 15), ("v", 18)]

    def test_includes_node_zero_and_partners(self, rt20):
        got = rt20.gather_to_root({0: "a", 17: "b"})
        assert got == ["a", "b"]

    def test_empty(self, rt16):
        assert rt16.gather_to_root({}) == []

    def test_single_node(self, strict_config):
        rt = NCCRuntime(1, strict_config)
        assert rt.gather_to_root({0: "x"}) == ["x"]

    def test_strict_capacity(self, rt32):
        rt32.gather_to_root({u: u for u in range(32)})
        assert rt32.net.stats.violation_count == 0
