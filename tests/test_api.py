"""The experiment schema: RunSpec in, RunReport out, canonical JSONL."""

import dataclasses
import json

import pytest

from repro.api import RunReport, RunSpec, dump_reports, load_reports
from repro.api.session import Session
from repro.errors import ConfigurationError


class TestRunSpec:
    def test_frozen(self):
        spec = RunSpec("mst", 16)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.n = 32

    def test_extras_normalized_and_hashable(self):
        a = RunSpec("bfs", 25, extras={"family": "grid"})
        b = RunSpec("bfs", 25, extras=(("family", "grid"),))
        assert a == b
        assert hash(a) == hash(b)
        assert a.options == {"family": "grid"}

    def test_enforcement_normalized(self):
        assert RunSpec("mst", 16, enforcement="strict").enforcement == "strict"
        with pytest.raises(ValueError):
            RunSpec("mst", 16, enforcement="nope")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec("", 16)
        with pytest.raises(ConfigurationError):
            RunSpec("mst", 0)
        with pytest.raises(ConfigurationError):
            RunSpec("mst", 16, a=0)

    def test_dict_roundtrip(self):
        spec = RunSpec("mis", 32, a=3, seed=7, engine="batched",
                       enforcement="count", extras={"family": "grid"})
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_sequence_extras_survive_json_roundtrip_hashable(self):
        # JSON reads tuples back as lists; extras values are canonicalized
        # to tuples so loaded specs stay equal to (and hash like) originals.
        spec = RunSpec("mst", 16, extras={"opt": (1, 2), "nested": [[3], 4]})
        line = json.dumps(spec.to_dict())
        loaded = RunSpec.from_dict(json.loads(line))
        assert loaded == spec
        assert hash(loaded) == hash(spec)
        assert loaded.options["opt"] == (1, 2)

    def test_mapping_extras_canonicalized_and_hashable(self):
        spec = RunSpec("mst", 16, extras={"weights": {"lo": 1, "hi": 9}})
        assert hash(spec) == hash(RunSpec("mst", 16,
                                          extras={"weights": {"hi": 9, "lo": 1}}))
        line = json.dumps(spec.to_dict())
        loaded = RunSpec.from_dict(json.loads(line))
        assert loaded == spec and hash(loaded) == hash(spec)

    def test_with_(self):
        spec = RunSpec("mst", 16).with_(seed=9)
        assert spec.seed == 9 and spec.algorithm == "mst"


class TestRunReport:
    def _report(self):
        return Session().run(RunSpec("mis", 16, seed=1))

    def test_fields(self):
        r = self._report()
        assert r.correct and r.rounds > 0 and r.messages > 0 and r.bits > 0
        from repro.config import known_engines

        assert r.engine in known_engines()
        assert r.row["rounds"] > 0
        assert r.stats["rounds"] == r.rounds
        assert r.violations == []
        assert r.wall_time_s > 0

    def test_json_line_is_deterministic_and_timing_free(self):
        r = self._report()
        line = r.to_json_line()
        assert "wall_time_s" not in line
        assert line == RunReport.from_json_line(line).to_json_line()
        # verbose dict keeps the timing
        assert "wall_time_s" in r.to_dict()
        assert "wall_time_s" not in r.to_dict(timing=False)

    def test_dump_load_roundtrip(self, tmp_path):
        reports = [Session().run(RunSpec("mis", 16, seed=s)) for s in (0, 1)]
        path = str(tmp_path / "reports.jsonl")
        dump_reports(reports, path)
        loaded = list(load_reports(path))
        assert [r.to_json_line() for r in loaded] == [
            r.to_json_line() for r in reports
        ]

    def test_dump_to_stdout(self, capsys):
        dump_reports([self._report()], "-")
        out = capsys.readouterr().out
        assert out.endswith("\n")
        assert json.loads(out)["correct"] is True
