"""Graph generators: structural invariants and determinism."""

import pytest

from repro.graphs import arboricity, generators, properties


class TestBasicShapes:
    def test_path(self):
        g = generators.path(10)
        assert g.m == 9
        assert properties.diameter(g) == 9

    def test_cycle(self):
        g = generators.cycle(10)
        assert g.m == 10
        assert all(g.degree(u) == 2 for u in range(10))
        with pytest.raises(ValueError):
            generators.cycle(2)

    def test_star(self):
        g = generators.star(10)
        assert g.degree(0) == 9
        assert g.max_degree == 9
        assert arboricity.arboricity_upper_bound(g) == 1

    def test_complete(self):
        g = generators.complete(8)
        assert g.m == 28
        lo, hi = arboricity.arboricity_bounds(g)
        assert lo == 4  # ceil(28/7)

    def test_grid(self):
        g = generators.grid(4, 6)
        assert g.n == 24
        assert g.m == 4 * 5 + 3 * 6
        assert properties.diameter(g) == 8
        assert arboricity.arboricity_upper_bound(g) <= 3
        with pytest.raises(ValueError):
            generators.grid(0, 5)

    def test_hypercube(self):
        g = generators.hypercube(4)
        assert g.n == 16
        assert all(g.degree(u) == 4 for u in range(16))
        assert properties.diameter(g) == 4

    def test_caterpillar(self):
        g = generators.caterpillar(5, 3)
        assert g.n == 20
        assert g.m == 19  # a tree
        assert properties.is_connected(g)


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        g = generators.random_tree(30, seed=1)
        assert g.m == 29
        assert properties.is_connected(g)
        assert arboricity.arboricity_upper_bound(g) == 1

    def test_random_connected_connected(self):
        for seed in range(4):
            g = generators.random_connected(25, 0.05, seed=seed)
            assert properties.is_connected(g)

    def test_gnp_edge_count_reasonable(self):
        g = generators.gnp(40, 0.5, seed=2)
        expected = 40 * 39 / 2 * 0.5
        assert 0.7 * expected < g.m < 1.3 * expected

    def test_forest_union_arboricity_bound(self):
        for k in (1, 2, 4):
            g = generators.forest_union(30, k, seed=k)
            assert properties.is_connected(g)
            # Union of k forests: density lower bound cannot exceed k.
            assert arboricity.density_lower_bound(g) <= k

    def test_preferential_attachment(self):
        g = generators.preferential_attachment(40, 2, seed=3)
        assert properties.is_connected(g)
        assert g.m <= 2 * 40
        # heavy tail: some node much busier than the median
        degrees = sorted(g.degree(u) for u in range(40))
        assert degrees[-1] >= 2 * degrees[20]

    def test_preferential_attachment_rejects_bad_m0(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment(10, 0)

    def test_disjoint_cliques(self):
        g = generators.disjoint_cliques(12, 4)
        comps = properties.connected_components(g)
        assert len(comps) == 3
        assert all(len(c) == 4 for c in comps)


class TestDeterminism:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda s: generators.random_tree(20, seed=s),
            lambda s: generators.gnp(20, 0.2, seed=s),
            lambda s: generators.forest_union(20, 2, seed=s),
            lambda s: generators.random_connected(20, 0.1, seed=s),
            lambda s: generators.preferential_attachment(20, 2, seed=s),
        ],
        ids=["tree", "gnp", "forest", "connected", "pa"],
    )
    def test_seeded_reproducibility(self, maker):
        assert maker(7).edges() == maker(7).edges()

    def test_different_seeds_differ(self):
        a = generators.gnp(20, 0.3, seed=1)
        b = generators.gnp(20, 0.3, seed=2)
        assert a.edges() != b.edges()

    @pytest.mark.parametrize(
        "maker",
        [
            lambda s: generators.random_tree(20, seed=s),
            lambda s: generators.gnp(20, 0.2, seed=s),
            lambda s: generators.forest_union(20, 2, seed=s),
            lambda s: generators.random_connected(20, 0.1, seed=s),
            lambda s: generators.preferential_attachment(20, 2, seed=s),
            lambda s: generators.random_bipartite(10, 10, 0.3, seed=s),
            lambda s: generators.ring_of_chords(20, 2, seed=s),
            lambda s: generators.series_parallel(20, seed=s),
        ],
        ids=["tree", "gnp", "forest", "connected", "pa", "bipartite",
             "chords", "sp"],
    )
    def test_seed_none_is_a_type_error(self, maker):
        # seed=None used to silently alias to seed 0, so "unseeded"
        # callers got identical graphs while looking random; it is now an
        # explicit TypeError across every randomized generator.
        with pytest.raises(TypeError, match="explicit int"):
            maker(None)

    def test_seed_default_is_zero_pinned(self):
        # The documented default: omitting the seed means seed=0 exactly.
        assert generators.gnp(20, 0.3).edges() == generators.gnp(
            20, 0.3, seed=0
        ).edges()

    def test_weights_seed_none_is_a_type_error(self):
        from repro.graphs import weights

        g = generators.path(6)
        with pytest.raises(TypeError, match="explicit int"):
            weights.with_random_weights(g, seed=None)
        with pytest.raises(TypeError, match="explicit int"):
            weights.with_unique_weights(g, seed=None)
