"""Phase-trace reporting."""

import pytest

from repro.analysis.trace import compare_runs, phase_report, phase_rows
from repro.graphs import generators
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def mis_stats():
    from repro.algorithms import MISAlgorithm

    g = generators.forest_union(24, 2, seed=1)
    rt = make_runtime(24, seed=2)
    MISAlgorithm(rt, g).run()
    return rt.net.stats


class TestPhaseRows:
    def test_sorted_by_rounds(self, mis_stats):
        rows = phase_rows(mis_stats)
        assert rows == sorted(rows, key=lambda r: (-r.rounds, r.label))

    def test_prefix_filter(self, mis_stats):
        rows = phase_rows(mis_stats, prefix="mis")
        assert rows
        assert all(r.label.startswith("mis") for r in rows)

    def test_top_limits(self, mis_stats):
        assert len(phase_rows(mis_stats, top=3)) == 3

    def test_shares_in_unit_interval(self, mis_stats):
        for r in phase_rows(mis_stats):
            assert 0 <= r.rounds_share <= 1

    def test_nested_phase_contained_in_parent(self, mis_stats):
        rows = {r.label: r for r in phase_rows(mis_stats)}
        assert rows["mis:ranks"].rounds <= rows["mis"].rounds

    def test_counts_match_stats(self, mis_stats):
        rows = {r.label: r for r in phase_rows(mis_stats)}
        for label, row in rows.items():
            ps = mis_stats.phase(label)
            assert (row.rounds, row.messages, row.entries) == (
                ps.rounds,
                ps.messages,
                ps.entries,
            )


class TestReports:
    def test_phase_report_formats(self, mis_stats):
        out = phase_report(mis_stats, title="T")
        assert out.startswith("T")
        assert "rounds" in out and "%" in out

    def test_compare_runs(self, mis_stats):
        out = compare_runs([("a", mis_stats), ("b", mis_stats)])
        assert out.count("\n") == 4  # title + header + sep + 2 rows

    def test_empty_stats(self):
        from repro.ncc.stats import NetworkStats

        out = phase_report(NetworkStats())
        assert "phase" in out
