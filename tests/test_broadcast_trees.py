"""Broadcast trees (Lemma 5.1) and Corollary 1's neighbourhood exchange."""

import math

import pytest

from repro.algorithms.broadcast_trees import (
    build_broadcast_trees,
    neighborhood_multi_aggregate,
)
from repro.primitives import MIN, SUM
from repro.graphs import generators
from tests.conftest import make_runtime


class TestConstruction:
    def test_groups_cover_neighborhoods(self):
        g = generators.forest_union(20, 2, seed=1)
        rt = make_runtime(20)
        bt = build_broadcast_trees(rt, g)
        for u in range(20):
            if g.degree(u) == 0:
                assert u not in bt.trees.root
                continue
            members = sorted(
                m
                for ms in bt.trees.leaf_members[u].values()
                for m in ms
            )
            assert members == list(g.neighbors(u))
        assert rt.net.stats.violation_count == 0

    def test_star_setup_is_cheap(self):
        """The whole point of Lemma 5.1: star (a=1, ∆=n−1) must not pay ∆."""
        g = generators.star(32)
        rt = make_runtime(32)
        bt = build_broadcast_trees(rt, g)
        # every node injects at most 2·outdeg ≤ 2 packets; setup is a small
        # multiple of log n.
        assert bt.setup_rounds <= 40 * math.log2(32)
        members = sorted(
            m for ms in bt.trees.leaf_members[0].values() for m in ms
        )
        assert members == list(range(1, 32))

    def test_congestion_bound_shape(self):
        for a in (1, 2, 4):
            g = generators.forest_union(32, a, seed=a)
            rt = make_runtime(32)
            bt = build_broadcast_trees(rt, g)
            assert bt.congestion() <= 12 * (a + math.log2(32))

    def test_precomputed_orientation_reused(self):
        from repro.algorithms import OrientationAlgorithm

        g = generators.grid(4, 4)
        rt = make_runtime(16)
        ori = OrientationAlgorithm(rt, g).run()
        bt = build_broadcast_trees(rt, g, orientation=ori)
        assert bt.orientation is ori


class TestCorollary1:
    def test_min_over_neighbors(self):
        g = generators.grid(4, 4)
        rt = make_runtime(16)
        bt = build_broadcast_trees(rt, g)
        out = neighborhood_multi_aggregate(
            rt, bt, {u: u + 100 for u in range(16)}, MIN
        )
        for v in range(16):
            assert out[v] == min(u + 100 for u in g.neighbors(v))

    def test_subset_of_senders(self):
        g = generators.cycle(12)
        rt = make_runtime(12)
        bt = build_broadcast_trees(rt, g)
        out = neighborhood_multi_aggregate(rt, bt, {0: 42}, SUM)
        assert out == {1: 42, 11: 42}

    def test_degree_counting(self):
        g = generators.forest_union(18, 2, seed=3)
        rt = make_runtime(18)
        bt = build_broadcast_trees(rt, g)
        out = neighborhood_multi_aggregate(
            rt, bt, {u: 1 for u in range(18)}, SUM
        )
        for v in range(18):
            if g.degree(v):
                assert out[v] == g.degree(v)

    def test_empty_sender_set(self):
        g = generators.cycle(8)
        rt = make_runtime(8)
        bt = build_broadcast_trees(rt, g)
        assert neighborhood_multi_aggregate(rt, bt, {}, SUM) == {}

    def test_isolated_sender_skipped(self):
        from repro import InputGraph

        g = InputGraph(8, [(0, 1)])
        rt = make_runtime(8)
        bt = build_broadcast_trees(rt, g)
        out = neighborhood_multi_aggregate(rt, bt, {5: 1, 0: 2}, SUM)
        assert out == {1: 2}
