"""The O(a)-orientation (Section 4): validity, outdegree, acyclicity."""

import pytest

from repro.algorithms import OrientationAlgorithm
from repro.errors import ProtocolError
from repro.graphs import arboricity, generators
from tests.conftest import make_runtime


def run_orientation(g, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = OrientationAlgorithm(rt, g).run()
    return rt, res


def assert_valid(g, ori):
    """Every edge oriented exactly once; in/out views consistent."""
    seen = set()
    for u in range(g.n):
        for v in ori.out_neighbors[u]:
            e = (u, v) if u < v else (v, u)
            assert e not in seen, f"edge {e} oriented twice"
            seen.add(e)
            assert u in ori.in_neighbors[v]
    assert seen == set(g.edges())
    for u in range(g.n):
        assert len(ori.out_neighbors[u]) + len(ori.in_neighbors[u]) == g.degree(u)


class TestValidity:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.random_tree(24, seed=1),
            lambda: generators.cycle(20),
            lambda: generators.star(24),
            lambda: generators.grid(5, 5),
            lambda: generators.forest_union(24, 3, seed=2),
            lambda: generators.complete(12),
            lambda: generators.caterpillar(4, 4),
        ],
        ids=["tree", "cycle", "star", "grid", "forest3", "complete", "caterpillar"],
    )
    def test_orientation_valid_strict(self, maker):
        g = maker()
        rt, ori = run_orientation(g)
        assert_valid(g, ori)
        assert rt.net.stats.violation_count == 0

    def test_empty_graph(self):
        from repro import InputGraph

        g = InputGraph(8, [])
        rt, ori = run_orientation(g)
        assert ori.max_outdegree == 0
        assert all(lvl >= 1 for lvl in ori.level)

    def test_disconnected(self):
        g = generators.disjoint_cliques(18, 6)
        rt, ori = run_orientation(g)
        assert_valid(g, ori)


class TestOutdegreeBound:
    @pytest.mark.parametrize(
        "maker,a_bound",
        [
            (lambda: generators.random_tree(32, seed=3), 1),
            (lambda: generators.star(32), 1),
            (lambda: generators.grid(6, 6), 3),
            (lambda: generators.forest_union(32, 2, seed=4), 2),
            (lambda: generators.forest_union(32, 4, seed=5), 4),
        ],
        ids=["tree", "star", "grid", "forest2", "forest4"],
    )
    def test_outdegree_at_most_4a(self, maker, a_bound):
        """Active nodes have dᵢ(u) ≤ 2·d̄ᵢ ≤ 4a, so outdegree ≤ 4a."""
        g = maker()
        rt, ori = run_orientation(g)
        assert ori.max_outdegree <= 4 * a_bound

    def test_star_center_has_outdegree_zero_or_one(self):
        g = generators.star(20)
        rt, ori = run_orientation(g)
        assert len(ori.out_neighbors[0]) <= 1


class TestLevelStructure:
    def test_levels_acyclic_order(self):
        """Edges go 'forward': (level, id) strictly increases along every
        directed edge — inactive nodes point at later-leaving neighbours,
        same-level edges follow identifiers."""
        g = generators.forest_union(28, 3, seed=6)
        rt, ori = run_orientation(g)
        for u, v in ori.arcs():
            assert (ori.level[u], u) < (ori.level[v], v) or ori.level[u] < ori.level[v] or (
                ori.level[u] == ori.level[v] and u < v
            )

    def test_same_level_arcs_by_id(self):
        g = generators.grid(5, 5)
        rt, ori = run_orientation(g)
        for u, v in ori.arcs():
            if ori.level[u] == ori.level[v]:
                assert u < v

    def test_cross_level_arcs_increase(self):
        g = generators.forest_union(24, 2, seed=7)
        rt, ori = run_orientation(g)
        for u, v in ori.arcs():
            assert ori.level[u] <= ori.level[v]

    def test_levels_positive_and_bounded(self):
        g = generators.random_tree(30, seed=8)
        rt, ori = run_orientation(g)
        assert all(1 <= lvl <= ori.phases for lvl in ori.level)

    def test_star_leaves_before_center(self):
        g = generators.star(16)
        rt, ori = run_orientation(g)
        assert all(ori.level[leaf] == 1 for leaf in range(1, 16))
        assert ori.level[0] == 2

    def test_phase_count_logarithmic(self):
        g = generators.forest_union(64, 2, seed=9)
        rt, ori = run_orientation(g, lightweight_sync=True)
        assert ori.phases <= 2 * 6 + 4

    def test_same_level_neighbors_view(self):
        g = generators.grid(4, 4)
        rt, ori = run_orientation(g)
        for u in range(g.n):
            same = set(ori.same_level_neighbors(u))
            expected = {
                v for v in g.neighbors(u) if ori.level[v] == ori.level[u]
            }
            assert same == expected


class TestDeterminismAndErrors:
    def test_deterministic(self):
        g = generators.forest_union(20, 2, seed=10)
        _, a = run_orientation(g, seed=3)
        _, b = run_orientation(g, seed=3)
        assert a.out_neighbors == b.out_neighbors
        assert a.rounds == b.rounds

    def test_size_mismatch_rejected(self):
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            OrientationAlgorithm(rt, generators.path(4))

    def test_phase_limit(self):
        g = generators.forest_union(24, 2, seed=11)
        rt = make_runtime(24, strict=False)
        with pytest.raises(ProtocolError):
            OrientationAlgorithm(rt, g).run(max_phases=0)
