"""InputGraph: validation, local views, identifier round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InputGraph, InputGraphError
from repro.ncc.graph_input import canonical_edge


class TestConstruction:
    def test_basic(self):
        g = InputGraph(4, [(0, 1), (1, 2), (0, 1)])
        assert g.m == 2  # duplicate collapsed
        assert g.neighbors(1) == (0, 2)
        assert g.degree(0) == 1

    def test_reversed_duplicate_collapses(self):
        g = InputGraph(3, [(0, 1), (1, 0)])
        assert g.m == 1

    def test_rejects_self_loops(self):
        with pytest.raises(InputGraphError):
            InputGraph(3, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(InputGraphError):
            InputGraph(3, [(0, 3)])
        with pytest.raises(InputGraphError):
            InputGraph(3, [(-1, 0)])

    def test_rejects_bad_n(self):
        with pytest.raises(InputGraphError):
            InputGraph(0, [])

    def test_empty_graph(self):
        g = InputGraph(5, [])
        assert g.m == 0
        assert g.max_degree == 0
        assert g.average_degree == 0.0


class TestWeights:
    def test_weights_readable_from_both_endpoints(self):
        g = InputGraph(3, [(0, 1)], {(0, 1): 7})
        assert g.weight(0, 1) == 7
        assert g.weight(1, 0) == 7
        assert g.is_weighted()

    def test_unweighted_defaults_to_one(self):
        g = InputGraph(3, [(0, 1)])
        assert g.weight(0, 1) == 1
        assert not g.is_weighted()

    def test_weight_of_non_edge_rejected(self):
        g = InputGraph(3, [(0, 1)], {(0, 1): 2})
        with pytest.raises(InputGraphError):
            g.weight(0, 2)

    def test_missing_weight_rejected(self):
        with pytest.raises(InputGraphError):
            InputGraph(3, [(0, 1), (1, 2)], {(0, 1): 2})

    def test_weight_for_non_edge_rejected(self):
        with pytest.raises(InputGraphError):
            InputGraph(3, [(0, 1)], {(0, 1): 2, (0, 2): 3})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(InputGraphError):
            InputGraph(3, [(0, 1)], {(0, 1): 0})

    def test_max_weight(self):
        g = InputGraph(3, [(0, 1), (1, 2)], {(0, 1): 2, (1, 2): 9})
        assert g.max_weight() == 9


class TestIdentifiers:
    @given(st.integers(min_value=2, max_value=500), st.data())
    @settings(max_examples=100)
    def test_arc_id_roundtrip(self, n, data):
        u = data.draw(st.integers(min_value=0, max_value=n - 1))
        v = data.draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != u))
        g = InputGraph(n, [(u, v)])
        assert g.arc_of_id(g.arc_id(u, v)) == (u, v)
        assert g.arc_of_id(g.arc_id(v, u)) == (v, u)

    def test_arc_ids_nonzero_and_distinct(self):
        g = InputGraph(8, [(0, 1), (1, 2)])
        ids = {g.arc_id(u, v) for u in range(8) for v in range(8) if u != v}
        assert 0 not in ids
        assert len(ids) == 8 * 7

    def test_edge_id_sorts_endpoints(self):
        g = InputGraph(5, [(3, 1)])
        assert g.edge_id(3, 1) == g.edge_id(1, 3) == g.arc_id(1, 3)

    def test_canonical_edge(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)


class TestViews:
    def test_has_edge_symmetric(self):
        g = InputGraph(4, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_average_degree(self):
        g = InputGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.average_degree == pytest.approx(1.5)

    def test_to_networkx_weighted(self):
        g = InputGraph(3, [(0, 1)], {(0, 1): 4})
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg[0][1]["weight"] == 4

    def test_to_networkx_unweighted(self):
        g = InputGraph(3, [(0, 1), (1, 2)])
        assert g.to_networkx().number_of_edges() == 2

    def test_iteration_yields_sorted_edges(self):
        g = InputGraph(4, [(3, 2), (1, 0)])
        assert list(g) == [(0, 1), (2, 3)]

    @given(
        st.integers(min_value=2, max_value=30).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda e: e[0] != e[1]),
                    max_size=60,
                ),
            )
        )
    )
    @settings(max_examples=100)
    def test_degree_sum_is_twice_edges(self, n_edges):
        n, edges = n_edges
        g = InputGraph(n, edges)
        assert sum(g.degree(u) for u in range(n)) == 2 * g.m
