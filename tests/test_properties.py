"""Graph property helpers."""

from repro import InputGraph
from repro.graphs import generators, properties


class TestComponents:
    def test_connected_graph_single_component(self):
        g = generators.cycle(10)
        assert properties.connected_components(g) == [list(range(10))]
        assert properties.is_connected(g)

    def test_disconnected(self):
        g = generators.disjoint_cliques(9, 3)
        comps = properties.connected_components(g)
        assert comps == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        assert not properties.is_connected(g)

    def test_isolated_nodes(self):
        g = InputGraph(4, [(0, 1)])
        comps = properties.connected_components(g)
        assert [0, 1] in comps and [2] in comps and [3] in comps

    def test_single_node(self):
        g = InputGraph(1, [])
        assert properties.is_connected(g)


class TestDistances:
    def test_bfs_distances(self):
        g = generators.path(5)
        assert properties.bfs_distances(g, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_none(self):
        g = InputGraph(3, [(0, 1)])
        assert properties.bfs_distances(g, 0)[2] is None

    def test_eccentricity(self):
        g = generators.path(7)
        assert properties.eccentricity(g, 0) == 6
        assert properties.eccentricity(g, 3) == 3

    def test_diameter_path(self):
        assert properties.diameter(generators.path(9)) == 8

    def test_diameter_cycle(self):
        assert properties.diameter(generators.cycle(10)) == 5

    def test_diameter_grid(self):
        assert properties.diameter(generators.grid(3, 4)) == 5

    def test_diameter_of_largest_component(self):
        g = InputGraph(7, [(0, 1), (1, 2), (2, 3), (5, 6)])
        assert properties.diameter(g) == 3


class TestDegreeStats:
    def test_star(self):
        s = properties.degree_stats(generators.star(10))
        assert s["max"] == 9
        assert s["min"] == 1
        assert abs(s["avg"] - 18 / 10) < 1e-9

    def test_empty(self):
        s = properties.degree_stats(InputGraph(3, []))
        assert s == {"max": 0, "min": 0, "avg": 0.0}
