"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    InputGraphError,
    MessageSizeError,
    ProtocolError,
    ReproError,
    RetryBudgetExceeded,
    SimulationLimitError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ProtocolError,
            SimulationLimitError,
            InputGraphError,
        ],
    )
    def test_subclasses_of_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_retry_budget_is_protocol_error(self):
        assert issubclass(RetryBudgetExceeded, ProtocolError)

    def test_capacity_error_payload(self):
        e = CapacityError("over", node=3, round_index=9, count=40, capacity=24)
        assert (e.node, e.round_index, e.count, e.capacity) == (3, 9, 40, 24)
        assert isinstance(e, ReproError)

    def test_message_size_error_payload(self):
        e = MessageSizeError("big", bits=99, budget=48)
        assert (e.bits, e.budget) == (99, 48)

    def test_catch_all_base(self):
        """Library callers can catch ReproError to get everything."""
        for make in (
            lambda: ConfigurationError("x"),
            lambda: CapacityError("x", node=0, round_index=0, count=1, capacity=1),
            lambda: MessageSizeError("x", bits=1, budget=1),
            lambda: ProtocolError("x"),
        ):
            try:
                raise make()
            except ReproError:
                pass
