"""Property tests for pipelined broadcast and gather-to-root."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import make_runtime

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # stateless test classes; see --engine=both replay in conftest.py
        HealthCheck.differing_executors,
    ],
)


class TestBroadcastProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(st.integers(min_value=0, max_value=1000), max_size=30),
        st.integers(min_value=0, max_value=39),
    )
    @settings(**SETTINGS)
    def test_everyone_receives_everything_in_order(self, n, items, src_raw):
        src = src_raw % n
        rt = make_runtime(n, seed=1)
        out = rt.pipelined_broadcast(items, src=src)
        for u in range(n):
            assert out[u] == items
        assert rt.net.stats.violation_count == 0

    @given(st.integers(min_value=2, max_value=40), st.data())
    @settings(**SETTINGS)
    def test_gather_collects_exactly_the_owned_items(self, n, data):
        owners = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
        )
        rt = make_runtime(n, seed=2)
        got = rt.gather_to_root({u: ("item", u) for u in owners})
        assert got == [("item", u) for u in sorted(owners)]
        assert rt.net.stats.violation_count == 0

    @given(st.integers(min_value=2, max_value=64))
    @settings(**SETTINGS)
    def test_broadcast_rounds_scale_with_items_and_depth(self, n):
        rt = make_runtime(n, seed=3)
        k = 20
        before = rt.net.round_index
        rt.pipelined_broadcast([0] * k)
        rounds = rt.net.round_index - before
        rate = max(1, rt.net.capacity // 2)
        import math

        depth = max(1, math.ceil(math.log2(n)))
        assert rounds <= depth + math.ceil(k / rate) + 3
