"""Routing-discipline invariants observed from outside the routers.

The network's round observer sees every message; these tests verify the
properties the delay-sequence analysis (Theorem B.2) rests on:

* one data packet per butterfly edge per round (cross edges are observable
  as host-pair messages tagged with the receiving level);
* per-node cross-edge load ≤ one message per hosted level (the reason one
  butterfly round fits one NCC round).
"""

import random

import pytest

from repro import Enforcement, NCCConfig, NCCNetwork
from repro.butterfly.routing import CombiningRouter
from repro.butterfly.topology import ButterflyGrid


def build_and_observe(n=32, packets=300, groups=24, seed=9):
    cfg = NCCConfig(seed=1, enforcement=Enforcement.STRICT)
    net = NCCNetwork(n, cfg)
    bf = ButterflyGrid(n)
    per_round_edges = []

    def observer(r, per_sender):
        edges = []
        for src, msgs in per_sender.items():
            for m in msgs:
                if m.kind == "combining" and m.payload[0] == "D":
                    lvl = m.payload[1]
                    edges.append((src, m.dst, lvl))
        per_round_edges.append(edges)

    net.round_observer = observer
    rng = random.Random(seed)
    router = CombiningRouter(
        net,
        bf,
        rank_of=lambda g: random.Random(f"r{g}").randrange(1 << 20),
        target_col_of=lambda g: random.Random(f"t{g}").randrange(bf.columns),
        combine=lambda a, b: a + b,
    )
    expected = {}
    for _ in range(packets):
        g = rng.randrange(groups)
        col = rng.randrange(bf.columns)
        router.inject(col, g, 1)
        expected[g] = expected.get(g, 0) + 1
    res = router.run()
    assert res.results == expected
    return bf, per_round_edges


class TestRoutingDiscipline:
    def test_one_packet_per_cross_edge_per_round(self):
        bf, rounds = build_and_observe()
        for edges in rounds:
            # a cross edge is identified by (src host, dst host, level)
            assert len(edges) == len(set(edges)), "edge used twice in one round"

    def test_per_host_cross_load_at_most_levels(self):
        bf, rounds = build_and_observe()
        for edges in rounds:
            per_src: dict[int, int] = {}
            for src, _dst, _lvl in edges:
                per_src[src] = per_src.get(src, 0) + 1
            for src, count in per_src.items():
                assert count <= bf.levels

    def test_levels_strictly_increase_along_run(self):
        """Data only ever moves downward (level i -> i+1)."""
        bf, rounds = build_and_observe()
        seen_levels = {lvl for edges in rounds for (_s, _d, lvl) in edges}
        assert seen_levels <= set(range(1, bf.levels))

    def test_cross_edges_match_topology(self):
        """Every observed cross transmission is a real butterfly edge."""
        from repro.butterfly.topology import BFNode

        bf, rounds = build_and_observe(n=16, packets=120, groups=10)
        for edges in rounds:
            for src, dst, lvl in edges:
                receiver = BFNode(lvl, dst)
                straight, cross = bf.up_neighbors(receiver)
                assert cross.column == src, "message not along a cross edge"
