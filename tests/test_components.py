"""Distributed connected components / spanning forest."""

import pytest

from repro.algorithms import ConnectedComponentsAlgorithm
from repro.graphs import generators, properties
from tests.conftest import make_runtime


def run_cc(g, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = ConnectedComponentsAlgorithm(rt, g).run()
    return rt, res


def expected_labels(g):
    comps = properties.connected_components(g)
    labels = [0] * g.n
    for comp in comps:
        m = min(comp)
        for u in comp:
            labels[u] = m
    return labels


class TestLabels:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.path(16),
            lambda: generators.disjoint_cliques(18, 6),
            lambda: generators.star(20),
            lambda: generators.forest_union(24, 2, seed=1),
            lambda: generators.gnp(20, 0.05, seed=2),  # likely disconnected
        ],
        ids=["path", "cliques", "star", "forest2", "sparse-gnp"],
    )
    def test_labels_match_oracle(self, maker):
        g = maker()
        rt, res = run_cc(g)
        assert res.labels == expected_labels(g)
        assert rt.net.stats.violation_count == 0

    def test_component_count(self):
        g = generators.disjoint_cliques(20, 5)
        _, res = run_cc(g)
        assert res.component_count == 4
        assert sorted(res.members(0)) == [0, 1, 2, 3, 4]

    def test_isolated_nodes_self_labeled(self):
        from repro import InputGraph

        g = InputGraph(6, [(0, 1)])
        _, res = run_cc(g)
        assert res.labels == [0, 0, 2, 3, 4, 5]


class TestForest:
    def test_forest_spans_components(self):
        import networkx as nx

        g = generators.gnp(22, 0.12, seed=3)
        _, res = run_cc(g)
        fg = nx.Graph(list(res.forest))
        fg.add_nodes_from(range(g.n))
        assert nx.is_forest(fg)
        # same connectivity structure as the input
        comps_in = {frozenset(c) for c in properties.connected_components(g)}
        comps_out = {frozenset(c) for c in nx.connected_components(fg)}
        assert comps_in == comps_out

    def test_forest_edge_count(self):
        g = generators.disjoint_cliques(15, 5)
        _, res = run_cc(g)
        assert len(res.forest) == 15 - 3  # n - #components

    def test_forest_edges_exist_in_graph(self):
        g = generators.forest_union(20, 2, seed=4)
        _, res = run_cc(g)
        assert res.forest <= set(g.edges())


class TestBehaviour:
    def test_deterministic(self):
        g = generators.gnp(20, 0.1, seed=5)
        _, a = run_cc(g, seed=7)
        _, b = run_cc(g, seed=7)
        assert a.labels == b.labels and a.forest == b.forest

    def test_cheaper_than_mst(self):
        """Unweighted search keys: fewer sketch iterations than MST."""
        from repro.algorithms import MSTAlgorithm
        from repro.graphs import weights

        g = generators.forest_union(32, 2, seed=6)
        rt1, res_cc = run_cc(g, lightweight_sync=True)
        wg = weights.with_random_weights(g, seed=7)
        rt2 = make_runtime(32, seed=1, lightweight_sync=True)
        res_mst = MSTAlgorithm(rt2, wg).run()
        assert res_cc.rounds < res_mst.rounds

    def test_empty_graph(self):
        from repro import InputGraph

        g = InputGraph(8, [])
        _, res = run_cc(g)
        assert res.labels == list(range(8))
        assert res.forest == set()
