"""Distributed MST vs the Kruskal oracle across weight regimes and shapes."""

import pytest

from repro.algorithms import MSTAlgorithm
from repro.baselines.sequential import kruskal_msf, msf_weight
from repro.errors import ProtocolError
from repro.graphs import generators, weights
from tests.conftest import make_runtime


def run_mst(g, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = MSTAlgorithm(rt, g).run()
    return rt, res


class TestCorrectness:
    def test_tree_input_returns_all_edges(self):
        g = weights.with_unique_weights(generators.random_tree(20, seed=1), seed=2)
        rt, res = run_mst(g)
        assert res.edges == set(g.edges())
        assert rt.net.stats.violation_count == 0

    def test_cycle_drops_heaviest(self):
        g = weights.with_unique_weights(generators.cycle(12), seed=3)
        rt, res = run_mst(g)
        assert res.edges == kruskal_msf(g)
        assert len(res.edges) == 11

    def test_random_graphs_match_kruskal(self):
        for seed in (1, 2, 3):
            g = weights.with_random_weights(
                generators.random_connected(24, 0.12, seed=seed), seed=seed + 50
            )
            rt, res = run_mst(g, seed=seed)
            assert res.edges == kruskal_msf(g)
            assert res.weight == msf_weight(g)

    def test_constant_weights_all_ties(self):
        g = weights.with_constant_weights(generators.random_connected(20, 0.15, seed=4))
        rt, res = run_mst(g)
        assert res.edges == kruskal_msf(g)
        assert len(res.edges) == 19

    def test_disconnected_yields_forest(self):
        g = weights.with_unique_weights(generators.disjoint_cliques(18, 6), seed=5)
        rt, res = run_mst(g)
        assert res.edges == kruskal_msf(g)
        assert len(res.edges) == 15  # 3 cliques x 5 tree edges

    def test_star_graph(self):
        g = weights.with_unique_weights(generators.star(17), seed=6)
        rt, res = run_mst(g)
        assert res.edges == set(g.edges())

    def test_empty_graph_empty_forest(self):
        from repro import InputGraph

        g = InputGraph(8, [])
        rt, res = run_mst(g)
        assert res.edges == set()
        assert res.phases <= 1

    def test_single_edge(self):
        from repro import InputGraph

        g = InputGraph(4, [(0, 3)], {(0, 3): 5})
        rt, res = run_mst(g)
        assert res.edges == {(0, 3)}

    def test_non_power_of_two_n(self):
        g = weights.with_unique_weights(
            generators.random_connected(19, 0.15, seed=7), seed=8
        )
        rt, res = run_mst(g)
        assert res.edges == kruskal_msf(g)


class TestPaperProperties:
    def test_inside_endpoint_knows_edge(self):
        g = weights.with_unique_weights(
            generators.random_connected(16, 0.2, seed=9), seed=10
        )
        rt, res = run_mst(g)
        known = {e for edges in res.known_by.values() for e in edges}
        assert known == res.edges
        # each edge discovered by exactly one endpoint
        for u, edges in res.known_by.items():
            for e in edges:
                assert u in e

    def test_phase_count_logarithmic(self):
        g = weights.with_unique_weights(
            generators.random_connected(48, 0.08, seed=11), seed=12
        )
        rt, res = run_mst(g, lightweight_sync=True)
        assert res.phases <= 4 * 6 + 16  # 4 log n + slack

    def test_deterministic_given_seed(self):
        g = weights.with_random_weights(
            generators.random_connected(20, 0.1, seed=13), seed=14
        )
        rt1, res1 = run_mst(g, seed=5)
        rt2, res2 = run_mst(g, seed=5)
        assert res1.edges == res2.edges
        assert res1.rounds == res2.rounds

    def test_different_seed_same_msf_when_unique(self):
        g = weights.with_unique_weights(
            generators.random_connected(20, 0.1, seed=15), seed=16
        )
        _, res1 = run_mst(g, seed=1)
        _, res2 = run_mst(g, seed=2)
        assert res1.edges == res2.edges  # unique MSF, any execution

    def test_graph_size_mismatch_rejected(self):
        g = generators.path(4)
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            MSTAlgorithm(rt, g)

    def test_phase_limit_enforced(self):
        g = weights.with_unique_weights(
            generators.random_connected(24, 0.1, seed=17), seed=18
        )
        rt = make_runtime(24, strict=False)
        with pytest.raises(ProtocolError):
            MSTAlgorithm(rt, g).run(max_phases=1)

    def test_rounds_counted_under_mst_phase(self):
        g = weights.with_unique_weights(generators.cycle(8), seed=19)
        rt, res = run_mst(g)
        assert rt.net.stats.phase("mst").rounds == res.rounds
        assert rt.net.stats.phase("mst:findmin").rounds > 0
