"""The Session driver: caching, canonicalization, and — crucially — the
determinism of parallel sweeps (jobs=N must be byte-identical to serial)."""

import pytest

from repro import Enforcement
from repro.api import RunSpec, Session, sweep_grid
from repro.registry import bench_config


class TestCanonicalization:
    def test_alias_and_defaults_resolved(self):
        report = Session().run(RunSpec("MM", 16, seed=1))
        assert report.spec.algorithm == "matching"
        assert report.spec.engine == report.engine
        assert report.spec.enforcement == "count"

    def test_spec_reruns_verbatim(self):
        session = Session()
        first = session.run(RunSpec("mis", 16, seed=1))
        again = session.run(first.spec)
        assert again.to_json_line() == first.to_json_line()

    def test_base_config_enforcement(self):
        session = Session(base_config=bench_config(0, enforcement=Enforcement.STRICT))
        report = session.run(RunSpec("mis", 16, seed=1))
        assert report.spec.enforcement == "strict"
        assert report.correct

    def test_engine_override(self):
        report = Session().run(RunSpec("mis", 16, seed=1, engine="batched"))
        assert report.engine == "batched"


class TestCaching:
    def test_workload_and_butterfly_cached_per_key(self):
        session = Session()
        r1 = session.run(RunSpec("mis", 16, seed=1))
        assert (("mis", 16, 2, 1, ()) in session._workload_cache)
        g = session._workload_cache[("mis", 16, 2, 1, ())]
        bf = session._bf_cache[16]
        session.run(RunSpec("mis", 16, seed=1))
        assert session._workload_cache[("mis", 16, 2, 1, ())] is g
        assert session._bf_cache[16] is bf
        r2 = session.run(RunSpec("mis", 16, seed=1))
        assert r2.to_json_line() == r1.to_json_line()

    def test_cache_disabled(self):
        session = Session(cache=False)
        session.run(RunSpec("mis", 16, seed=1))
        assert not session._workload_cache
        assert not session._bf_cache

    def test_cache_flag_reaches_pool_workers(self):
        from repro.api import session as session_mod

        try:
            session_mod._init_worker(None, False)
            assert session_mod._WORKER_SESSION._cache_enabled is False
        finally:
            session_mod._WORKER_SESSION = None


class TestOptionValidation:
    """Regression: a typo'd option used to fall through silently —
    ``extras={"familly": "grid"}`` ran the *default* workload without
    complaint because ``_workload`` only forwards keys in
    ``workload_options``."""

    def test_unknown_option_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as ei:
            Session().run(RunSpec("bfs", 16, seed=1, extras={"familly": "grid"}))
        assert "familly" in str(ei.value)
        assert "family" in str(ei.value)  # known options are listed

    def test_unknown_option_on_optionless_algorithm(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match=r"\(none\)"):
            Session().run(RunSpec("mis", 16, seed=1, extras={"source": 3}))

    def test_workload_option_accepted(self):
        report = Session().run(
            RunSpec("bfs", 16, seed=1, extras={"family": "grid"})
        )
        assert report.correct

    def test_run_option_accepted(self):
        # ``source`` is a keyword of the bfs run callable, not a workload
        # option; validation must accept both kinds.
        report = Session().run(RunSpec("bfs", 16, seed=1, extras={"source": 2}))
        assert report.correct

    def test_run_many_validates_too(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Session().run_many(
                [RunSpec("bfs", 16, seed=1, extras={"familly": "grid"})]
            )


class TestSweepGrid:
    def test_grid_order_is_algorithm_major(self):
        specs = sweep_grid(["mst", "mis"], [16, 24], seeds=[0, 1])
        assert len(specs) == 8
        assert [s.algorithm for s in specs[:4]] == ["mst"] * 4
        assert [(s.n, s.seed) for s in specs[:4]] == [
            (16, 0), (16, 1), (24, 0), (24, 1),
        ]

    def test_engines_axis(self):
        specs = sweep_grid(["mis"], [16], engines=["reference", "batched"])
        assert [s.engine for s in specs] == ["reference", "batched"]

    def test_duplicate_axis_values_collapse(self):
        """Regression: ``ns=[64, 64]`` used to emit every row twice (and
        rerun it); axes dedupe preserving first-occurrence order."""
        specs = sweep_grid(["mis", "mis"], [24, 16, 24], seeds=[0, 1, 0])
        assert len(specs) == 4
        assert [(s.n, s.seed) for s in specs] == [
            (24, 0), (24, 1), (16, 0), (16, 1),
        ]
        specs = sweep_grid(
            ["mis"], [16], engines=["batched", "reference", "batched"]
        )
        assert [s.engine for s in specs] == ["batched", "reference"]


class TestParallelDeterminism:
    """`Session.run_many` must be deterministic: the JSONL bytes for a
    mixed-engine grid are identical for jobs=1 and jobs=4 (guards the
    shared-randomness seeding across worker processes)."""

    # the acceptance grid: 3 algorithms x 2 sizes x 2 seeds x both engines.
    SPECS = sweep_grid(
        ["mis", "matching", "bfs"],
        [16, 24],
        seeds=[0, 1],
        engines=["reference", "batched"],
    )

    @pytest.mark.engine("reference")  # pins its own engines; skip replays
    def test_jobs4_bytes_equal_jobs1(self, tmp_path):
        serial_path = str(tmp_path / "serial.jsonl")
        parallel_path = str(tmp_path / "parallel.jsonl")
        serial = Session().run_many(self.SPECS, jobs=1, out=serial_path)
        parallel = Session().run_many(self.SPECS, jobs=4, out=parallel_path)
        assert len(serial) == len(self.SPECS) == 24
        serial_bytes = (tmp_path / "serial.jsonl").read_bytes()
        parallel_bytes = (tmp_path / "parallel.jsonl").read_bytes()
        assert serial_bytes == parallel_bytes
        assert all(r.correct for r in serial)
        # report order always matches spec order
        session = Session()
        assert [r.spec for r in parallel] == [
            session.canonical(s) for s in self.SPECS
        ]

    def test_run_many_serial_matches_run(self):
        specs = sweep_grid(["mis"], [16], seeds=[0, 1])
        session = Session()
        many = session.run_many(specs)
        singly = [Session().run(s) for s in specs]
        assert [r.to_json_line() for r in many] == [
            r.to_json_line() for r in singly
        ]

    def test_progress_callback_sees_every_report(self):
        seen = []
        Session().run_many(
            sweep_grid(["mis"], [16], seeds=[0, 1]), progress=seen.append
        )
        assert [r.spec.seed for r in seen] == [0, 1]
