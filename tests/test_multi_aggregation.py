"""Multi-Aggregation (Theorem 2.6): multicast + per-member aggregation."""

import random

import pytest

from repro.primitives import MAX, MIN, SUM, min_by_key
from tests.conftest import make_runtime


def neighborhood_setup(rt, adjacency):
    """Trees with group u = its neighbour set (broadcast-tree shape)."""
    memberships = {}
    for u, nbrs in adjacency.items():
        for v in nbrs:
            memberships.setdefault(v, []).append(u)
    return rt.multicast_setup(memberships)


class TestCorrectness:
    def test_min_over_senders(self):
        rt = make_runtime(16)
        # ring adjacency: u's group contains u±1
        adj = {u: [(u - 1) % 16, (u + 1) % 16] for u in range(16)}
        trees = neighborhood_setup(rt, adj)
        packets = {u: u + 100 for u in range(16)}
        out = rt.multi_aggregation(trees, packets, {u: u for u in range(16)}, MIN)
        for v in range(16):
            expected = min(u + 100 for u in range(16) if v in adj[u])
            assert out.values[v] == expected
        assert rt.net.stats.violation_count == 0

    def test_sum_counts_senders(self):
        rt = make_runtime(20)
        adj = {u: [(u + 1) % 20, (u + 2) % 20, (u + 3) % 20] for u in range(20)}
        trees = neighborhood_setup(rt, adj)
        out = rt.multi_aggregation(
            trees, {u: 1 for u in range(20)}, {u: u for u in range(20)}, SUM
        )
        for v in range(20):
            indeg = sum(1 for u in range(20) if v in adj[u])
            assert out.values[v] == indeg

    def test_subset_of_sources(self):
        rt = make_runtime(16)
        adj = {u: [(u + 1) % 16] for u in range(16)}
        trees = neighborhood_setup(rt, adj)
        out = rt.multi_aggregation(trees, {4: "x"}, {4: 4}, MAX)
        assert out.values == {5: "x"}

    def test_annotate_hook_changes_combining(self):
        rt = make_runtime(16, seed=3)
        # two senders per receiver; annotation picks a uniformly random one
        adj = {u: [(u + 1) % 16, (u + 2) % 16] for u in range(16)}
        trees = neighborhood_setup(rt, adj)

        def annotate(leaf_rng, group, member, payload):
            return (leaf_rng.randrange(1 << 16), payload)

        out = rt.multi_aggregation(
            trees,
            {u: u for u in range(16)},
            {u: u for u in range(16)},
            min_by_key(),
            annotate=annotate,
        )
        for v in range(16):
            _, chosen = out.values[v]
            assert chosen in [(v - 1) % 16, (v - 2) % 16]

    def test_missing_tree_rejected(self):
        rt = make_runtime(8)
        trees = rt.multicast_setup({0: [1]})
        with pytest.raises(KeyError):
            rt.multi_aggregation(trees, {5: 1}, {5: 5}, SUM)

    def test_random_instances(self):
        for seed in range(4):
            rng = random.Random(seed)
            n = 24
            rt = make_runtime(n, seed=seed)
            adj = {
                u: rng.sample([v for v in range(n) if v != u], rng.randrange(1, 5))
                for u in range(n)
            }
            trees = neighborhood_setup(rt, adj)
            senders = rng.sample(range(n), 10)
            packets = {u: u * 3 + 1 for u in senders}
            out = rt.multi_aggregation(
                trees, packets, {u: u for u in senders}, SUM
            )
            for v in range(n):
                expected = sum(
                    packets[u] for u in senders if v in adj[u]
                )
                if expected:
                    assert out.values[v] == expected
                else:
                    assert v not in out.values
            assert rt.net.stats.violation_count == 0
