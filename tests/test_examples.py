"""Smoke tests for the example scripts: each must import and run at tiny n.

The examples are living documentation of the paper's scenarios; without
this test they can rot silently (they are plain scripts, not modules).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script stem -> tiny-but-valid main() argument.
EXAMPLES = {
    "quickstart": 16,
    "contact_bootstrap": 32,
    "datacenter_kmachine": 16,
    "hybrid_network_planning": 4,  # grid side, n = 16
    "overlay_social_network": 24,
}


def _load(stem: str):
    path = EXAMPLES_DIR / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(f"example_{stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    stems = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert stems == set(EXAMPLES), (
        "examples/ changed; update the EXAMPLES map in this test"
    )


@pytest.mark.parametrize("stem", sorted(EXAMPLES))
def test_example_runs(stem, capsys):
    module = _load(stem)
    module.main(EXAMPLES[stem])
    out = capsys.readouterr().out
    assert out.strip(), f"{stem}.main() printed nothing"
