"""Parity sketches: group structure and set-equality semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.kwise import hash_family
from repro.hashing.sketches import ParitySketch, sketch_differs

FAM = hash_family(16, 6, 2, seed=77)


class TestAlgebra:
    def test_zero_is_identity(self):
        s = ParitySketch.of_keys([3, 7, 9], FAM)
        z = ParitySketch.zero(len(FAM))
        assert (s ^ z) == s
        assert z.is_zero()

    def test_self_inverse(self):
        s = ParitySketch.of_keys([3, 7, 9], FAM)
        assert (s ^ s).is_zero()

    def test_commutative(self):
        a = ParitySketch.of_keys([1, 2], FAM)
        b = ParitySketch.of_keys([5], FAM)
        assert (a ^ b) == (b ^ a)

    def test_mismatched_trials_rejected(self):
        a = ParitySketch.zero(4)
        b = ParitySketch.zero(5)
        with pytest.raises(ValueError):
            _ = a ^ b
        with pytest.raises(ValueError):
            sketch_differs(a, b)

    def test_trial_accessors(self):
        s = ParitySketch.of_keys([42], FAM)
        assert s.as_tuple() == tuple(s.trial(t) for t in range(s.trials))
        with pytest.raises(IndexError):
            s.trial(s.trials)

    def test_size_bits_is_trials(self):
        assert ParitySketch.zero(12).size_bits() == 12


class TestEqualitySemantics:
    def test_equal_multisets_never_differ(self):
        keys = [10, 20, 30, 40]
        a = ParitySketch.of_keys(keys, FAM)
        b = ParitySketch.of_keys(list(reversed(keys)), FAM)
        assert not sketch_differs(a, b)

    def test_duplicate_pairs_cancel(self):
        # XOR parity: a key appearing twice vanishes, exactly the behaviour
        # FindMin exploits for internal component edges.
        a = ParitySketch.of_keys([5, 5, 9], FAM)
        b = ParitySketch.of_keys([9], FAM)
        assert not sketch_differs(a, b)

    def test_distinct_single_keys_differ_whp(self):
        # 16 trials: failure probability 2^-16 per pair; these fixed pairs
        # must separate.
        hits = 0
        for x in range(50):
            a = ParitySketch.of_keys([x], FAM)
            b = ParitySketch.of_keys([x + 1000], FAM)
            if sketch_differs(a, b):
                hits += 1
        assert hits >= 48

    @given(
        st.lists(st.integers(min_value=1, max_value=10**6), min_size=0, max_size=20),
        st.lists(st.integers(min_value=1, max_value=10**6), min_size=0, max_size=20),
    )
    @settings(max_examples=150)
    def test_differs_implies_different_multisets(self, xs, ys):
        """Soundness: sketch_differs never fires on equal multisets."""
        a = ParitySketch.of_keys(xs, FAM)
        b = ParitySketch.of_keys(ys, FAM)
        if sorted(xs) == sorted(ys):
            assert not sketch_differs(a, b)

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=16, unique=True))
    @settings(max_examples=100)
    def test_xor_matches_of_keys(self, keys):
        """Combining per-key sketches equals sketching the whole set."""
        combined = ParitySketch.zero(len(FAM))
        for k in keys:
            combined = combined ^ ParitySketch.of_keys([k], FAM)
        assert combined == ParitySketch.of_keys(keys, FAM)
