"""The algorithm registry: one source of truth for every consumer."""

import pytest

from repro import registry
from repro.analysis import tables
from repro.errors import ConfigurationError
from repro.registry import (
    AlgorithmSpec,
    UnknownAlgorithmError,
    algorithm_names,
    get_algorithm,
    iter_algorithms,
    register_algorithm,
    table1_specs,
)


class TestLookup:
    def test_canonical_names(self):
        names = algorithm_names()
        assert {"mst", "bfs", "mis", "matching", "coloring"} <= set(names)
        assert {"components", "orientation", "broadcast_trees",
                "identification", "findmin"} <= set(names)

    def test_aliases_case_insensitive(self):
        assert get_algorithm("MST") is get_algorithm("mst")
        assert get_algorithm("MM") is get_algorithm("matching")
        assert get_algorithm("col") is get_algorithm("coloring")
        assert get_algorithm("connected-components") is get_algorithm("components")

    def test_table1_key_resolves(self):
        for spec in table1_specs():
            assert get_algorithm(spec.table1_key) is spec

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownAlgorithmError, match="unknown algorithm"):
            get_algorithm("nope")

    def test_runnable_only_filter(self):
        runnable = algorithm_names(runnable_only=True)
        assert "findmin" not in runnable
        assert "mst" in runnable


class TestTable1View:
    def test_row_order_is_the_papers(self):
        assert [s.table1_key for s in table1_specs()] == [
            "MST", "BFS", "MIS", "MM", "COL",
        ]

    def test_tables_shim_is_a_registry_view(self):
        # The deprecation shim exposes the registry's bound row runners.
        assert list(tables.TABLE1_RUNNERS) == ["MST", "BFS", "MIS", "MM", "COL"]
        for key, runner in tables.TABLE1_RUNNERS.items():
            assert runner.__self__ is get_algorithm(key)
        assert tables.TABLE1_BOUNDS == {
            s.table1_key: s.bound for s in table1_specs()
        }

    def test_legacy_runner_names_still_exported(self):
        assert tables.run_mst_row is tables.TABLE1_RUNNERS["MST"]
        assert tables.run_bfs_row is tables.TABLE1_RUNNERS["BFS"]


class TestExecution:
    def test_row_matches_legacy_shape_and_order(self):
        row = get_algorithm("mst").run_row(16, a=2, seed=1)
        assert list(row)[:6] == ["n", "m", "a", "a_lower", "a_greedy", "max_degree"]
        assert list(row)[-3:] == ["correct", "messages", "violations"]
        assert row["correct"]

    def test_execute_exposes_runtime_and_output(self):
        ex = get_algorithm("mis").execute(16, seed=1)
        assert ex.row["rounds"] == ex.output.rounds
        assert ex.runtime.net.stats.messages == ex.row["messages"]
        assert ex.graph.n == 16

    def test_workload_options_forwarded(self):
        row = get_algorithm("bfs").run_row(25, seed=1, family="grid")
        assert row["n"] == 25 and row["D"] == 8

    def test_non_runnable_subroutine_refuses(self):
        spec = get_algorithm("findmin")
        assert spec.kind == "subroutine"
        assert not spec.runnable
        with pytest.raises(ConfigurationError, match="not independently runnable"):
            spec.run_row(16)

    def test_parity_run_requires_support(self):
        spec = get_algorithm("findmin")
        assert not spec.supports_parity
        with pytest.raises(ConfigurationError):
            spec.parity_run(None, n=8)

    def test_every_runnable_spec_declares_oracle_and_bound(self):
        for spec in iter_algorithms():
            if spec.runnable:
                assert spec.check is not None
                assert spec.describe is not None
                assert spec.bound


class TestLazyLoading:
    def test_analysis_import_does_not_load_algorithms(self):
        # The tables shim materializes its registry views lazily; importing
        # repro.analysis (e.g. for reporting/complexity) must stay cheap.
        import subprocess
        import sys

        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro.analysis, sys; "
                "print(any(m.startswith('repro.algorithms') for m in sys.modules))",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "False"


class TestRegistration:
    def test_register_and_replace(self):
        try:
            @register_algorithm("zz-test", aliases=("ZZT",), summary="test entry")
            def _run(rt, g):  # pragma: no cover - never executed
                return None

            spec = get_algorithm("zzt")
            assert isinstance(spec, AlgorithmSpec)
            assert spec.name == "zz-test"
            assert not spec.runnable  # no workload/check/describe declared

            # Re-registering the same name replaces the entry (reload-safe).
            @register_algorithm("zz-test", summary="replaced")
            def _run2(rt, g):  # pragma: no cover
                return None

            assert get_algorithm("zz-test").summary == "replaced"
        finally:
            registry._SPECS.pop("zz-test", None)
            registry._ALIASES.pop("zz-test", None)
            registry._ALIASES.pop("zzt", None)
