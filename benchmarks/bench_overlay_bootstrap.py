"""Experiment OV-1 — Section 6's closing remark: the aggregation backbone
from Θ(log n) random contacts.

The paper: "all of our algorithms still achieve the presented runtimes if
… they initially only know Θ(log n) random nodes."  The bootstrap
(min-flooding over the contact digraph under the introduction rule) must
converge in O(log n) rounds with an O(log n)-depth tree, and the resulting
knowledge-free Aggregate-and-Broadcast must land in the same regime as the
full-knowledge butterfly version of Theorem 2.2.
"""

import math

import pytest

from repro import NCCRuntime
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.overlay import (
    bootstrap_aggregation_tree,
    random_contact_lists,
    tree_aggregate_broadcast,
)
from repro.primitives import SUM

from .conftest import run_once

SEED = 8


def test_bootstrap_scaling(benchmark, report):
    rows = []
    for n in (32, 64, 128, 256, 512):
        rt = NCCRuntime(n, bench_config(SEED))
        contacts = random_contact_lists(n, 2.0, seed=SEED)
        res = bootstrap_aggregation_tree(rt, contacts)
        assert res.leader == 0
        rows.append(
            [n, res.converged_round, res.depth, round(math.log2(n), 1), res.rounds]
        )
        assert res.converged_round <= 3 * math.log2(n)
        assert res.depth <= 3 * math.log2(n)
    report(
        format_table(
            ["n", "flood converged", "tree depth", "log n", "window rounds"],
            rows,
            title="OV-1  Bootstrap from 2·log n random contacts (Section 6 remark)",
        )
    )
    run_once(benchmark, lambda: None)


def test_knowledge_free_ab_vs_butterfly(benchmark, report):
    rows = []
    for n in (64, 256):
        rt = NCCRuntime(n, bench_config(SEED))
        contacts = random_contact_lists(n, 2.0, seed=SEED)
        tree = bootstrap_aggregation_tree(rt, contacts)
        before = rt.net.round_index
        total = tree_aggregate_broadcast(rt, tree, {u: 1 for u in range(n)}, SUM)
        tree_rounds = rt.net.round_index - before
        assert total == n

        rt2 = NCCRuntime(n, bench_config(SEED))
        before = rt2.net.round_index
        rt2.aggregate_and_broadcast({u: 1 for u in range(n)}, SUM)
        bf_rounds = rt2.net.round_index - before
        rows.append([n, tree_rounds, bf_rounds, tree.rounds])
        assert tree_rounds <= 4 * bf_rounds
    report(
        format_table(
            ["n", "tree A&B rounds", "butterfly A&B rounds", "bootstrap (once)"],
            rows,
            title="OV-1  Knowledge-free A&B vs Theorem 2.2 butterfly A&B",
        )
    )
    run_once(benchmark, lambda: None)
