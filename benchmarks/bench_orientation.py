"""Experiment OR-1 — Theorem 4.12: O(a)-orientation in O((a + log n) log n).

Checks the three claims of Section 4 at once: the computed orientation is a
valid orientation (every edge directed once), the maximum outdegree is O(a)
(≤ 4a with the d̄ᵢ ≤ 2a peeling argument's constant), and rounds track
(a + log n) log n across both sweeps.
"""

import pytest

from repro import NCCRuntime
from repro.algorithms import OrientationAlgorithm
from repro.analysis.complexity import rank_models
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.graphs import arboricity, generators

from .conftest import run_once

SEED = 2


def run_orientation(g):
    rt = NCCRuntime(g.n, bench_config(SEED))
    ori = OrientationAlgorithm(rt, g).run()
    assert arboricity.verify_orientation_bound(g, ori.out_neighbors, 10**9)
    assert rt.net.stats.violation_count == 0
    return rt, ori


def test_orientation_arboricity_sweep(benchmark, report):
    rows = []
    for a in (1, 2, 4, 8):
        g = generators.forest_union(96, a, seed=SEED)
        rt, ori = run_orientation(g)
        rows.append([a, ori.max_outdegree, 4 * a, ori.phases, ori.rounds])
        assert ori.max_outdegree <= 4 * a
    report(
        format_table(
            ["a", "max outdegree", "4a bound", "phases", "rounds"],
            rows,
            title="OR-1  Orientation arboricity sweep at n=96 (Theorem 4.12)",
        )
    )
    run_once(benchmark, lambda: run_orientation(generators.forest_union(64, 4, seed=SEED)))


def test_orientation_n_sweep(benchmark, report):
    rows = []
    params = []
    rounds = []
    for n in (32, 64, 128, 256):
        g = generators.forest_union(n, 2, seed=SEED)
        rt, ori = run_orientation(g)
        rows.append([n, ori.max_outdegree, ori.phases, ori.rounds])
        params.append({"n": n, "a": 2})
        rounds.append(ori.rounds)
    fits = rank_models(params, rounds)
    by_name = {f.model: f for f in fits}
    assert by_name["(a + log n) log n"].rmse <= by_name["n"].rmse
    report(
        format_table(
            ["n", "max outdegree", "phases", "rounds"],
            rows,
            title="OR-1  Orientation n-sweep at a=2 (bound O((a + log n) log n))",
        )
        + "\n  model fits (best first): "
        + "; ".join(f"{f.model} nrmse={f.rmse:.2f}" for f in fits[:3])
    )
    run_once(benchmark, lambda: None)


def test_orientation_degenerate_families(benchmark, report):
    """Stars and grids: a is tiny while ∆ or D is large — outdegree must
    follow a."""
    rows = []
    for name, g, a in [
        ("star", generators.star(128), 1),
        ("grid", generators.grid(11, 11), 3),
        ("caterpillar", generators.caterpillar(16, 7), 1),
    ]:
        rt, ori = run_orientation(g)
        rows.append([name, g.n, g.max_degree, a, ori.max_outdegree, ori.rounds])
        assert ori.max_outdegree <= 4 * a
    report(
        format_table(
            ["family", "n", "∆", "a", "max outdegree", "rounds"],
            rows,
            title="OR-1  Orientation on low-arboricity/high-degree families",
        )
    )
    run_once(benchmark, lambda: None)
