"""Experiment CAP-1 — ablation of the model's capacity constant.

Section 1: "the capacity bound of O(log n) messages per node per round is
a natural choice: it is small enough to ensure scalability and any smaller
would require unnecessarily complicated techniques…".  This ablation makes
the statement quantitative: the same MIS workload runs under capacity
multipliers 0.5x–8x (capacity = mult·⌈log₂ n⌉).

* above ~2x the ledger is clean and extra capacity buys almost nothing
  (the algorithms are round-bound, not bandwidth-bound);
* below it, violations appear — the w.h.p. load bounds of the primitives
  genuinely need their log n headroom, which is the paper's "any smaller
  would require unnecessarily complicated techniques" in numbers.
"""

import pytest

from repro import Enforcement, NCCConfig, NCCRuntime
from repro.algorithms import MISAlgorithm
from repro.analysis.reporting import format_table
from repro.baselines.sequential import is_maximal_independent_set
from repro.graphs import generators

from .conftest import run_once

SEED = 9
N = 64


def run_with_capacity(mult: float):
    g = generators.forest_union(N, 2, seed=SEED)
    cfg = NCCConfig(
        seed=SEED,
        capacity_multiplier=mult,
        enforcement=Enforcement.COUNT,
        extras={"lightweight_sync": True},
    )
    rt = NCCRuntime(N, cfg)
    res = MISAlgorithm(rt, g).run()
    assert is_maximal_independent_set(g, res.members)
    return rt, res


def test_capacity_ablation(benchmark, report):
    rows = []
    for mult in (0.5, 1.0, 2.0, 4.0, 8.0):
        rt, res = run_with_capacity(mult)
        rows.append(
            [
                mult,
                rt.net.capacity,
                res.rounds,
                rt.net.stats.violation_count,
                rt.net.stats.max_received_per_round,
            ]
        )
    # Ample capacity: clean ledger.  The default (4x) must be clean.
    by_mult = {r[0]: r for r in rows}
    assert by_mult[4.0][3] == 0
    assert by_mult[8.0][3] == 0
    # Starved capacity must be *visible* in the ledger (the model's point).
    assert by_mult[0.5][3] > 0
    # Rounds are capacity-insensitive once the ledger is clean.
    assert abs(by_mult[8.0][2] - by_mult[4.0][2]) <= 0.2 * by_mult[4.0][2]
    report(
        format_table(
            ["capacity mult", "capacity", "rounds", "violations", "max recv/round"],
            rows,
            title=f"CAP-1  Capacity ablation (MIS, n={N}; model: O(log n) per round)",
        )
        + "\n  the paper's O(log n) capacity needs a small constant of headroom;"
        + "\n  once clean, extra capacity buys nothing — the algorithms are"
        + "\n  round-bound, not bandwidth-bound."
    )
    run_once(benchmark, lambda: None)


def test_identification_constant_ablation(benchmark, report):
    """Section 4.2's trial constant q: starving it must surface as
    second-step work or failures, not silent wrong answers."""
    from repro.algorithms.identification import (
        identification_family,
        run_identification,
    )

    g = generators.forest_union(48, 3, seed=SEED)
    playing = [u for u in range(48) if u % 2 == 0]
    rows = []
    for q in (8, 32, 128, 512):
        cfg = NCCConfig(seed=SEED, enforcement=Enforcement.COUNT, extras={"lightweight_sync": True})
        rt = NCCRuntime(48, cfg)
        fam = identification_family(rt, 7, q, tag=("ablate", q))
        learners = [u for u in range(48) if u % 2 == 1]
        candidates = {u: list(g.neighbors(u)) for u in learners}
        potential = {
            v: [w for w in g.neighbors(v) if w % 2 == 1] for v in playing
        }
        res = run_identification(rt, g, learners, candidates, potential, fam)
        wrong = 0
        for u in learners:
            true_red = {v for v in g.neighbors(u) if v % 2 == 1}
            wrong += len(set(res.red_neighbors.get(u, ())) - true_red)
        rows.append([q, len(res.unsuccessful), wrong])
        assert wrong == 0, "starved trials must degrade to unsuccessful, not wrong"
    # generous q: nobody fails
    assert rows[-1][1] == 0
    report(
        format_table(
            ["q (trials)", "unsuccessful learners", "wrong identifications"],
            rows,
            title="CAP-1b  Identification trial-count ablation (Lemma 4.2)",
        )
    )
    run_once(benchmark, lambda: None)
