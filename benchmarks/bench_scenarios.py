"""Scenario-subsystem timings: per-family workload build + run cost.

Two quantities per scenario family, persisted under ``scenarios`` in
``BENCH_engine.json`` so the CI artifact tracks the cost of the sweep
axis across PRs:

* **build_s** — constructing the workload instance at n = 256 (the graph
  generator plus any weight regime; this is what the Session workload
  cache amortizes over a sweep);
* **run_s / rounds** — one full MIS execution (MST for weighted families)
  through :class:`repro.api.Session` at n = 64.

There is no speedup gate here — scenario families are *inputs*, not
engine code — but the module asserts the matrix contract: every timed
run is correct and byte-deterministically rerunnable.
"""

import time

from repro.api import RunSpec, Session
from repro.scenarios import get_scenario

from .conftest import emit_bench_json, run_once

BUILD_N = 256
RUN_N = 64

#: the timed families: one per structural regime (a-controlled, planar,
#: star, heavy-tail, expander-like, disconnected, dense, weighted).
FAMILIES = (
    "forest-union",
    "grid",
    "star",
    "pa-heavy-tail",
    "ring-of-chords",
    "cliques-disconnected",
    "complete",
    "forest-union-random-weights",
    "grid-unique-weights",
)


def _algorithm_for(spec) -> str:
    return "mst" if spec.weighted else "mis"


def test_scenario_build_and_run_timings(benchmark, report):
    session = Session()
    payload: dict[str, dict] = {}
    lines = []
    for name in FAMILIES:
        scn = get_scenario(name)
        t0 = time.perf_counter()
        g = scn.build(BUILD_N, 2, 0)
        build_s = time.perf_counter() - t0
        run_spec = RunSpec(_algorithm_for(scn), RUN_N, seed=1, scenario=name)
        t0 = time.perf_counter()
        first = session.run(run_spec)
        run_s = time.perf_counter() - t0
        assert first.correct, f"{_algorithm_for(scn)} on {name} incorrect"
        again = session.run(run_spec)
        assert again.to_json_line() == first.to_json_line()
        payload[name] = {
            "build_n": BUILD_N,
            "build_m": g.m,
            "build_s": round(build_s, 4),
            "run_algorithm": _algorithm_for(scn),
            "run_n": RUN_N,
            "run_rounds": first.rounds,
            "run_s": round(run_s, 3),
        }
        lines.append(
            f"  {name:<30} build(n={BUILD_N})={build_s * 1e3:7.1f}ms  "
            f"{_algorithm_for(scn)}(n={RUN_N})={run_s:6.2f}s  "
            f"rounds={first.rounds}"
        )
    emit_bench_json("scenarios", payload)
    report(
        "Scenario families: workload build + run cost\n" + "\n".join(lines)
    )
    # pytest-benchmark wall-time anchor: one representative cached re-run.
    run_once(
        benchmark,
        lambda: session.run(RunSpec("mis", RUN_N, seed=1, scenario="grid")),
    )
