"""Benchmark-suite plumbing.

Every benchmark measures two things:

* **wall time** via pytest-benchmark (``benchmark.pedantic`` with a single
  iteration — the simulations are deterministic, repetition adds nothing);
* **model rounds / messages** — the quantities the paper actually bounds —
  collected into report tables that are re-emitted after the run via
  ``pytest_terminal_summary`` (so they survive pytest's output capture).

Report tables are exactly the rows EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

_REPORTS: list[str] = []


def add_report(text: str) -> None:
    """Queue a table for the end-of-run summary."""
    _REPORTS.append(text)


@pytest.fixture
def report():
    return add_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tw = terminalreporter
    tw.section("NCC reproduction experiment tables")
    for block in _REPORTS:
        tw.write_line("")
        for line in block.splitlines():
            tw.write_line(line)
    _REPORTS.clear()


def run_once(benchmark, fn):
    """Benchmark a deterministic heavyweight callable exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
