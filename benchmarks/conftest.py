"""Benchmark-suite plumbing.

Every benchmark measures two things:

* **wall time** via pytest-benchmark (``benchmark.pedantic`` with a single
  iteration — the simulations are deterministic, repetition adds nothing);
* **model rounds / messages** — the quantities the paper actually bounds —
  collected into report tables that are re-emitted after the run via
  ``pytest_terminal_summary`` (so they survive pytest's output capture).

Report tables are exactly the rows EXPERIMENTS.md records.
"""

from __future__ import annotations

import json
import os

import pytest

_REPORTS: list[str] = []

#: Where benchmark timings are persisted for the CI perf-trajectory
#: artifact; sections are merged so several benchmark modules can
#: contribute to one file.
BENCH_JSON_PATH = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")


def emit_bench_json(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` into the benchmark JSON file."""
    data: dict = {}
    try:
        with open(BENCH_JSON_PATH, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        data = {}
    data[section] = payload
    with open(BENCH_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def add_report(text: str) -> None:
    """Queue a table for the end-of-run summary."""
    _REPORTS.append(text)


@pytest.fixture
def report():
    return add_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tw = terminalreporter
    tw.section("NCC reproduction experiment tables")
    for block in _REPORTS:
        tw.write_line("")
        for line in block.splitlines():
            tw.write_line(line)
    _REPORTS.clear()


def run_once(benchmark, fn):
    """Benchmark a deterministic heavyweight callable exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
