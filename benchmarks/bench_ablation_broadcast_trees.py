"""Experiment BT-1 — Lemma 5.1 + ablation: orientation-based broadcast-tree
setup vs the naive join-every-neighbour setup.

Section 5's motivating observation: with naive joins ℓ = ∆, so the setup
costs O(d̄ + ∆/log n + log n) — Θ(n/log n) on a star — while the
orientation trick caps every node's injections at 2·outdeg = O(a).  The
table shows the measured rounds for both on stars of doubling size: the
naive cost grows ~linearly, the Lemma 5.1 cost stays ~flat, and the gap
widens with n (the "who wins, by what factor" row of this experiment).
"""

import pytest

from repro import NCCRuntime
from repro.algorithms import build_broadcast_trees
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.baselines.naive import naive_broadcast_tree_setup_rounds
from repro.graphs import generators

from .conftest import run_once

SEED = 4


def test_star_setup_ablation(benchmark, report):
    rows = []
    for n in (32, 64, 128, 256):
        g = generators.star(n)

        rt_naive = NCCRuntime(n, bench_config(SEED))
        naive_rounds = naive_broadcast_tree_setup_rounds(rt_naive, g)

        rt_smart = NCCRuntime(n, bench_config(SEED))
        bt = build_broadcast_trees(rt_smart, g)
        smart_total = bt.setup_rounds + bt.orientation_rounds

        surcharge = naive_rounds - bt.setup_rounds
        rows.append(
            [
                n,
                naive_rounds,
                bt.setup_rounds,
                surcharge,
                bt.orientation_rounds,
                smart_total,
            ]
        )
    # Both setups share an additive O(log n) overhead (barriers, injection
    # floor); the quantity Lemma 5.1 removes is the ℓ = ∆ *surcharge* of the
    # naive joins, which must grow like ∆/log n = Θ(n/log n) while the L5.1
    # setup itself stays ~log n.  (At simulable sizes the one-time shared
    # orientation still dominates the total — crossover extrapolates to
    # n ≈ 4k with our constants.)
    assert rows[-1][1] > rows[-1][2], "naive must lose to the L5.1 setup"
    surcharge_growth = rows[-1][3] / max(1, rows[0][3])
    setup_growth = rows[-1][2] / max(1, rows[0][2])
    assert surcharge_growth > 1.5 * setup_growth, "∆-surcharge must outgrow setup"
    report(
        format_table(
            ["n", "naive setup", "L5.1 setup", "∆-surcharge", "orientation (shared)", "L5.1 total"],
            rows,
            title="BT-1  Broadcast-tree setup on stars: naive (ℓ=∆) vs Lemma 5.1 (ℓ=O(a))",
        )
        + "\n  the naive ∆-surcharge grew {:.1f}x over 8x n (Θ(n/log n));".format(surcharge_growth)
        + "\n  the L5.1 setup grew {:.1f}x (Θ(log n)).  The orientation is computed".format(setup_growth)
        + "\n  once and shared by every Section-5 algorithm."
    )
    run_once(benchmark, lambda: None)


def test_setup_scales_with_arboricity_not_degree(benchmark, report):
    """On forest unions, the Lemma 5.1 setup rounds follow a, not ∆."""
    rows = []
    for a in (1, 2, 4):
        g = generators.forest_union(128, a, seed=SEED)
        rt = NCCRuntime(128, bench_config(SEED))
        bt = build_broadcast_trees(rt, g)
        rows.append([a, g.max_degree, bt.setup_rounds, bt.congestion()])
    # setup rounds must grow far slower than max degree does
    assert rows[-1][2] < rows[0][2] * 4
    report(
        format_table(
            ["a", "∆", "setup rounds", "tree congestion"],
            rows,
            title="BT-1  Setup cost tracks arboricity (n=128)",
        )
    )
    run_once(benchmark, lambda: None)
