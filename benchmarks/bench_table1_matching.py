"""Experiment T1-MM — Table 1 row 4 / Theorem 5.4:
maximal matching in O((a + log n) log n).

Same sweep structure as T1-MIS: the two problems share the bound and the
broadcast-tree machinery, so their round counts should land in the same
regime (the table makes that comparison explicit).
"""

import pytest

from repro.registry import get_algorithm
from repro.analysis.complexity import rank_models
from repro.analysis.reporting import format_table

from .conftest import run_once

# Row runners resolved through the algorithm registry.
run_matching_row = get_algorithm("matching").run_row
run_mis_row = get_algorithm("mis").run_row

SEED = 1


def test_matching_n_sweep(benchmark, report):
    rows = [run_matching_row(n, a=2, seed=SEED) for n in (32, 64, 128, 256)]
    assert all(r["correct"] for r in rows)
    assert all(r["violations"] == 0 for r in rows)

    params = [{"n": r["n"], "a": r["a"]} for r in rows]
    rounds = [r["rounds"] for r in rows]
    fits = rank_models(params, rounds)
    by_name = {f.model: f for f in fits}
    assert by_name["(a + log n) log n"].rmse <= by_name["n"].rmse

    # Cross-row comparison with MIS (same bound): within a small factor.
    mis_rows = [run_mis_row(n, a=2, seed=SEED) for n in (32, 64)]
    for mm_r, mis_r in zip(rows[:2], mis_rows):
        ratio = mm_r["rounds"] / mis_r["rounds"]
        assert 0.2 < ratio < 5.0

    report(
        format_table(
            ["n", "m", "a", "phases", "rounds", "|M|", "messages"],
            [
                [r["n"], r["m"], r["a"], r["phases"], r["rounds"], r["matching_size"], r["messages"]]
                for r in rows
            ],
            title="T1-MM n-sweep  (paper bound: O((a + log n) log n), Theorem 5.4)",
        )
        + "\n  model fits (best first): "
        + "; ".join(f"{f.model} nrmse={f.rmse:.2f}" for f in fits[:3])
    )
    run_once(benchmark, lambda: run_matching_row(64, a=2, seed=SEED))


def test_matching_arboricity_sweep(benchmark, report):
    rows = [run_matching_row(96, a=a, seed=SEED) for a in (1, 2, 4, 8)]
    assert all(r["correct"] for r in rows)
    assert rows[-1]["rounds"] < 6 * rows[0]["rounds"]
    report(
        format_table(
            ["a", "rounds", "phases", "|M|"],
            [[r["a"], r["rounds"], r["phases"], r["matching_size"]] for r in rows],
            title="T1-MM arboricity sweep at n=96",
        )
    )
    run_once(benchmark, lambda: run_matching_row(48, a=4, seed=SEED))
