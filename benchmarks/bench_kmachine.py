"""Experiment KM-1 — Corollary 2 (Appendix A):
any T-round NCC algorithm simulates on k machines in Õ(n T / k²) rounds.

A live NCC execution (MIS and MST) is observed by the k-machine conversion
for k ∈ {2,4,8,16}; the measured k-machine rounds must fall superlinearly
in k (the k² in the denominator, up to the additive T term for lockstep
synchronization of rounds that carry few messages).
"""

import pytest

from repro import NCCRuntime
from repro.algorithms import MISAlgorithm, MSTAlgorithm
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.graphs import generators, weights
from repro.kmachine import KMachineSimulation

from .conftest import run_once

SEED = 6
KS = [2, 4, 8, 16]


def observe(algorithm_factory, n, k):
    rt = NCCRuntime(n, bench_config(SEED))
    sim = KMachineSimulation(rt.net, k, seed=SEED)
    algorithm_factory(rt).run()
    return sim.detach()


def test_kmachine_mis_scaling(benchmark, report):
    n = 96
    g = generators.forest_union(n, 2, seed=SEED)
    rows = []
    costs = {}
    for k in KS:
        cost = observe(lambda rt: MISAlgorithm(rt, g), n, k)
        costs[k] = cost
        # Õ(nT/k²) + T lockstep floor
        predicted = cost.ncc_rounds * (1 + n / (k * k))
        rows.append(
            [
                k,
                cost.ncc_rounds,
                cost.kmachine_rounds,
                cost.max_link_load,
                round(cost.kmachine_rounds / cost.ncc_rounds, 2),
            ]
        )
    # more machines => cheaper simulation, approaching the T floor
    assert costs[16].kmachine_rounds < costs[2].kmachine_rounds
    assert costs[16].kmachine_rounds >= costs[16].ncc_rounds  # T is a floor
    report(
        format_table(
            ["k", "NCC rounds T", "k-machine rounds", "max link load", "overhead"],
            rows,
            title="KM-1  MIS under k-machine conversion (Corollary 2: Õ(nT/k²))",
        )
    )
    run_once(benchmark, lambda: observe(lambda rt: MISAlgorithm(rt, g), n, 4))


def test_kmachine_mst_scaling(benchmark, report):
    n = 32
    g = weights.with_random_weights(
        generators.forest_union(n, 2, seed=SEED), seed=SEED + 1
    )
    rows = []
    costs = {}
    for k in (2, 8):
        cost = observe(lambda rt: MSTAlgorithm(rt, g), n, k)
        costs[k] = cost
        rows.append([k, cost.ncc_rounds, cost.kmachine_rounds, cost.cross_messages])
    assert costs[8].kmachine_rounds <= costs[2].kmachine_rounds
    report(
        format_table(
            ["k", "NCC rounds T", "k-machine rounds", "cross messages"],
            rows,
            title="KM-1  MST under k-machine conversion (cf. Pandurangan et al. [51])",
        )
    )
    run_once(benchmark, lambda: None)
