"""Experiment E-ENG — batched vs reference round-engine wall time.

The engines are certified observably identical (``tests/test_engine_parity.py``),
so this benchmark measures the one thing allowed to differ: wall time.  The
workload is the message-heaviest primitive pattern in the repository —
direct clique-edge exchange (``primitives.direct``) at full send/receive
capacity, i.e. every node sends ``capacity`` messages per round along
shifted permutations so every node also receives exactly ``capacity``.
That is the per-round traffic shape of Stage 3 orientation deliveries and
multicast leaf deliveries, scaled to the budget.

Two submissions of the same traffic are measured:

* ``columnar`` — per-sender :class:`~repro.ncc.message.MessageBatch`
  groups (what ``send_direct`` now produces): the batched engine
  concatenates the cached columns and never touches per-message attributes.
  **Acceptance: >= 2x faster than the reference engine at n = 1024.**
* ``plain`` — ordinary ``list[Message]`` groups: the batched engine must
  first lower them to columns, so the win is smaller but must not regress.

Messages are prebuilt outside the timed region (message *construction* is
engine-independent), and the gate times the engine interface itself —
``RoundEngine.run_round`` on normalized per-sender traffic — so the shared
``exchange`` bookkeeping (normalization, observer, phase attribution)
cannot dilute the engine-vs-engine comparison; end-to-end ``exchange``
rows are reported alongside.  Each timed sample runs ``ROUNDS`` rounds and
the per-engine result is the best of ``REPEATS`` samples.  Stats parity is
asserted on every run so the speedup can never come from skipped work.
"""

from __future__ import annotations

import time

from repro import Enforcement, NCCConfig, NCCNetwork
from repro.analysis.reporting import format_table
from repro.ncc.message import Message, MessageBatch

from .conftest import emit_bench_json, run_once

ROUNDS = 15
REPEATS = 5
SPEEDUP_TARGET = 2.0


def permutation_workload(n: int, *, columnar: bool):
    """Full-capacity clean traffic: node u sends to u+1, ..., u+capacity
    (mod n) — a union of shift permutations, so send and receive loads are
    both exactly ``capacity`` and no enforcement branch fires."""
    cap = NCCConfig().capacity(n)
    out = {}
    for u in range(n):
        dsts = [(u + i + 1) % n for i in range(cap)]
        payloads = [(u, i) for i in range(cap)]
        if columnar:
            b = MessageBatch.from_columns(u, dsts, payloads, kind="bench")
            # This benchmark measures steady-state resubmission: the same
            # batches are replayed every round, so warm the cached numpy
            # columns here, outside the timed region.  Fresh-batch
            # submission (new columns every round, the primitives' shape)
            # is measured end-to-end by bench_primitives.
            b.int_cols
            b.obj_col
            out[u] = b
        else:
            out[u] = [
                Message(u, d, p, kind="bench") for d, p in zip(dsts, payloads)
            ]
    return out


def _fresh_net(engine: str, n: int) -> NCCNetwork:
    return NCCNetwork(
        n, NCCConfig(seed=0, enforcement=Enforcement.COUNT, engine=engine)
    )


def time_engine(engine: str, n: int, per_sender) -> tuple[float, tuple]:
    """Best-of-REPEATS seconds per ``run_round`` call on normalized
    per-sender traffic, plus every observable the round produced."""
    best = float("inf")
    observed = None
    for _ in range(REPEATS):
        net = _fresh_net(engine, n)
        eng = net.engine
        eng.run_round(per_sender)  # warmup: first-touch allocations
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            delivered, sent_messages, sent_bits = eng.run_round(per_sender)
        best = min(best, (time.perf_counter() - t0) / ROUNDS)
        observed = (
            sent_messages,
            sent_bits,
            list(delivered.items()),
            net.stats.comparable(),
        )
    return best, observed


def time_exchange(engine: str, n: int, outgoing) -> float:
    """End-to-end ``exchange`` seconds per round (best of REPEATS)."""
    best = float("inf")
    for _ in range(REPEATS):
        net = _fresh_net(engine, n)
        net.exchange(outgoing)
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            net.exchange(outgoing)
        best = min(best, (time.perf_counter() - t0) / ROUNDS)
    return best


def test_engine_fastpath_speedup(benchmark, report):
    """E-ENG: columnar submission must be >= 2x at n = 1024; plain lists
    must not regress.  Both engines must produce identical observables."""
    rows = []
    headline_speedup = None
    for n in (256, 1024):
        for label, columnar in (("columnar", True), ("plain", False)):
            out = permutation_workload(n, columnar=columnar)
            t_ref, o_ref = time_engine("reference", n, out)
            t_bat, o_bat = time_engine("batched", n, out)
            assert o_ref == o_bat, "engines diverged — parity violated"
            x_ref = time_exchange("reference", n, out)
            x_bat = time_exchange("batched", n, out)
            speedup = t_ref / t_bat
            msgs = sum(len(v) for v in out.values())
            rows.append(
                [n, label, msgs,
                 round(t_ref * 1e3, 2), round(t_bat * 1e3, 2), round(speedup, 2),
                 round(x_ref * 1e3, 2), round(x_bat * 1e3, 2),
                 round(x_ref / x_bat, 2)]
            )
            if n == 1024 and columnar:
                headline_speedup = speedup
            if columnar:
                assert speedup >= (SPEEDUP_TARGET if n == 1024 else 1.5), (
                    f"columnar speedup {speedup:.2f}x below target at n={n}"
                )
            else:
                assert speedup >= 0.9, (
                    f"plain-list path regressed: {speedup:.2f}x at n={n}"
                )
    report(
        format_table(
            ["n", "submission", "msgs/round",
             "engine ref ms", "engine bat ms", "engine speedup",
             "exchange ref ms", "exchange bat ms", "exchange speedup"],
            rows,
            title=(
                "E-ENG  Round-engine fast path (acceptance: >= "
                f"{SPEEDUP_TARGET}x columnar engine time at n=1024; measured "
                f"{headline_speedup:.2f}x)"
            ),
        )
    )
    # Persist the timings for the CI perf-trajectory artifact.
    emit_bench_json(
        "engine_fastpath",
        {
            "headline_speedup_n1024_columnar": round(headline_speedup, 3),
            "speedup_target": SPEEDUP_TARGET,
            "columns": [
                "n", "submission", "msgs_per_round",
                "engine_ref_ms", "engine_bat_ms", "engine_speedup",
                "exchange_ref_ms", "exchange_bat_ms", "exchange_speedup",
            ],
            "rows": rows,
        },
    )
    out = permutation_workload(1024, columnar=True)
    run_once(benchmark, lambda: time_engine("batched", 1024, out))


def test_engine_fastpath_violating_round_parity(benchmark, report):
    """E-ENG-V: overloaded DROP rounds take the bucketed slow path — time
    it and re-assert the engines draw identical random drops."""
    n = 1024
    results = {}
    for engine in ("reference", "batched"):
        net = NCCNetwork(
            n, NCCConfig(seed=0, enforcement=Enforcement.DROP, engine=engine)
        )
        hot = [Message(s, 0, (s,), kind="hot") for s in range(net.capacity + 50)]
        inbox = net.exchange(hot)
        results[engine] = (
            sorted(m.payload[0] for m in inbox[0]),
            net.stats.comparable(),
        )
    assert results["reference"] == results["batched"]
    report(
        format_table(
            ["property", "value"],
            [["identical drop selection", "yes"],
             ["identical violation ledger", "yes"]],
            title="E-ENG-V  DROP-mode slow-path parity at n=1024",
        )
    )
    run_once(benchmark, lambda: None)
