"""Experiment-API sweep gates: pool speedups + determinism.

Three claims behind ``Session.run_many``:

* **P-SWEEP (fork speedup)** — on ≥ 2 cores, fanning a grid out over the
  legacy fork pool beats running it serially.  Gated at ≥ 1.2× with
  jobs=2 — conservative so CI runners with noisy neighbours pass, while
  still failing if the pool ever serializes.
* **P-POOL (persistent speedup)** — on ≥ 4 cores, the persistent worker
  service (warm workers + shared-memory workload handoff, the ``auto``
  default) beats serial by ≥ 1.6× with jobs=4; a warm-pool rerun must not
  be slower than the cold one that paid worker spawn.
* **byte-determinism** — serial, fork, cold-persistent, and
  warm-persistent report streams are byte-identical (also pinned
  per-spec in ``tests/test_session.py`` / ``tests/test_pool.py``; here it
  rides along on the big grid for free).

Timings land in ``BENCH_engine.json`` under ``sweep_session`` so the CI
artifact tracks sweep throughput across PRs (the artifact-presence check
in ``scripts/verify.sh`` fails if the section goes missing again).
"""

import os
import time

import pytest

from repro.api import Session, shared_memory_available, sweep_grid

from .conftest import emit_bench_json, run_once

SEED = 1

#: the gated grid: heavy enough that per-run work dominates pool overhead
#: (~10 s serial), small enough for CI.
GRID = sweep_grid(["mst", "mis", "matching"], [48, 64], seeds=[0, 1])


def _timed(session: Session, jobs: int):
    t0 = time.perf_counter()
    reports = session.run_many(GRID, jobs=jobs)
    return [r.to_json_line() for r in reports], time.perf_counter() - t0


def test_sweep_parallel_speedup(benchmark, report):
    cores = os.cpu_count() or 1
    shm = shared_memory_available()

    serial_lines, serial_s = _timed(Session(), jobs=1)
    with Session(pool="fork") as s:
        fork_lines, fork_s = _timed(s, jobs=2)
    if shm:
        with Session(pool="persistent") as s:
            cold_lines, cold_s = _timed(s, jobs=4)
            warm_lines, warm_s = _timed(s, jobs=4)
    else:  # pragma: no cover - containers with a masked /dev/shm
        cold_lines = warm_lines = serial_lines
        cold_s = warm_s = float("nan")

    assert fork_lines == serial_lines, "fork sweep is not deterministic"
    assert cold_lines == serial_lines, "persistent sweep is not deterministic"
    assert warm_lines == serial_lines, "warm pool reuse is not deterministic"

    fork_speedup = serial_s / fork_s if fork_s else float("inf")
    cold_speedup = serial_s / cold_s if cold_s else float("inf")
    warm_speedup = serial_s / warm_s if warm_s else float("inf")
    emit_bench_json(
        "sweep_session",
        {
            "grid_runs": len(GRID),
            "cores": cores,
            "shm_available": shm,
            "serial_s": round(serial_s, 3),
            "fork_jobs2_s": round(fork_s, 3),
            "speedup_fork_jobs2": round(fork_speedup, 2),
            "persistent_jobs4_s": round(cold_s, 3),
            "speedup_persistent_jobs4": round(cold_speedup, 2),
            "persistent_warm_jobs4_s": round(warm_s, 3),
            "speedup_persistent_warm_jobs4": round(warm_speedup, 2),
        },
    )
    report(
        f"Session sweep throughput ({len(GRID)} runs: 3 algos x 2 sizes x 2 seeds)\n"
        f"  cores={cores}  shm={'yes' if shm else 'no'}  serial={serial_s:.2f}s\n"
        f"  fork jobs=2: {fork_s:.2f}s ({fork_speedup:.2f}x)   "
        f"persistent jobs=4: {cold_s:.2f}s ({cold_speedup:.2f}x)   "
        f"warm: {warm_s:.2f}s ({warm_speedup:.2f}x)\n"
        f"  JSONL byte-identical across pools and jobs: yes"
    )

    if cores < 2:
        pytest.skip("speedup gates need >= 2 cores; determinism still checked")
    assert fork_speedup >= 1.2, (
        f"fork sweep not measurably faster: {fork_speedup:.2f}x "
        f"(serial {serial_s:.2f}s vs jobs=2 {fork_s:.2f}s)"
    )
    if cores < 4 or not shm:
        pytest.skip("persistent gate needs >= 4 cores and shared memory")
    assert cold_speedup >= 1.6, (
        f"persistent pool under its gate: {cold_speedup:.2f}x "
        f"(serial {serial_s:.2f}s vs jobs=4 {cold_s:.2f}s)"
    )
    assert warm_s <= cold_s * 1.1, (
        f"warm pool reuse slower than cold spawn: {warm_s:.2f}s vs {cold_s:.2f}s"
    )


def test_sweep_caching_amortizes_setup(benchmark, report):
    """Per-n butterfly/workload caching: re-running a spec in one session
    must not rebuild the instance (same objects, same report bytes)."""
    session = Session()
    spec = GRID[1]
    first = session.run(spec)
    workloads = dict(session._workload_cache)
    grids = dict(session._bf_cache)
    second = session.run(spec)
    assert session._workload_cache == workloads
    assert session._bf_cache == grids
    assert first.to_json_line() == second.to_json_line()
    run_once(benchmark, lambda: session.run(spec))
