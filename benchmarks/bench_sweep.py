"""Experiment-API sweep gates: parallel Session speedup + determinism.

Two claims behind ``Session.run_many``:

* **P-SWEEP (speedup)** — on a machine with ≥ 2 cores, fanning a scenario
  grid out over worker processes is measurably faster than running it
  serially (the runs are independent simulations; the only shared state is
  the immutable spec list).  Gated at ≥ 1.2× with jobs=2 — conservative so
  CI runners with noisy neighbours pass, while still failing if the pool
  ever serializes (lock contention, pickling the world, …).
* **byte-determinism** — the parallel JSONL is byte-identical to the
  serial JSONL (also covered per-spec in ``tests/test_session.py``; here
  it rides along on the big grid for free).

Timings land in ``BENCH_engine.json`` under ``sweep_session`` so the CI
artifact tracks sweep throughput across PRs.
"""

import os
import time

import pytest

from repro.api import Session, sweep_grid

from .conftest import emit_bench_json, run_once

SEED = 1

#: the gated grid: heavy enough that per-run work dominates pool overhead
#: (~10 s serial), small enough for CI.
GRID = sweep_grid(["mst", "mis", "matching"], [48, 64], seeds=[0, 1])


def _run_grid(jobs: int):
    t0 = time.perf_counter()
    reports = Session().run_many(GRID, jobs=jobs)
    return reports, time.perf_counter() - t0


def test_sweep_parallel_speedup(benchmark, report):
    cores = os.cpu_count() or 1
    serial_reports, serial_s = _run_grid(jobs=1)
    parallel_reports, parallel_s = _run_grid(jobs=2)

    assert all(r.correct for r in serial_reports)
    serial_lines = [r.to_json_line() for r in serial_reports]
    parallel_lines = [r.to_json_line() for r in parallel_reports]
    assert serial_lines == parallel_lines, "parallel sweep is not deterministic"

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    emit_bench_json(
        "sweep_session",
        {
            "grid_runs": len(GRID),
            "cores": cores,
            "serial_s": round(serial_s, 3),
            "parallel_jobs2_s": round(parallel_s, 3),
            "speedup_jobs2": round(speedup, 2),
        },
    )
    report(
        f"Session sweep throughput ({len(GRID)} runs: 3 algos x 2 sizes x 2 seeds)\n"
        f"  cores={cores}  serial={serial_s:.2f}s  jobs=2={parallel_s:.2f}s  "
        f"speedup={speedup:.2f}x\n"
        f"  JSONL byte-identical across jobs: yes"
    )

    if cores < 2:
        pytest.skip("speedup gate needs >= 2 cores; determinism still checked")
    assert speedup >= 1.2, (
        f"parallel sweep not measurably faster: {speedup:.2f}x "
        f"(serial {serial_s:.2f}s vs jobs=2 {parallel_s:.2f}s)"
    )


def test_sweep_caching_amortizes_setup(benchmark, report):
    """Per-n butterfly/workload caching: re-running a spec in one session
    must not rebuild the instance (same objects, same report bytes)."""
    session = Session()
    spec = GRID[1]
    first = session.run(spec)
    workloads = dict(session._workload_cache)
    grids = dict(session._bf_cache)
    second = session.run(spec)
    assert session._workload_cache == workloads
    assert session._bf_cache == grids
    assert first.to_json_line() == second.to_json_line()
    run_once(benchmark, lambda: session.run(spec))
