"""Experiment SEP-1 — the introduction's model-separation claims.

* gossip: 1 round in the Congested Clique vs Ω(n/log n) in the NCC;
* broadcast: 1 round vs Θ(log n) (lower bound Ω(log n / log log n));
* per-round bandwidth: Θ̃(n²) bits vs Θ̃(n) bits.

Both sides are executed for real: the Congested Clique simulator counts its
messages/bits, and the NCC runs an actual round-robin gossip schedule and
the butterfly broadcast under capacity enforcement.
"""

import math

import pytest

from repro import NCCRuntime
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.baselines.congested_clique import (
    broadcast_congested_clique,
    broadcast_ncc,
    gossip_congested_clique,
    gossip_ncc,
)

from .conftest import run_once

SEED = 5


def test_gossip_separation(benchmark, report):
    rows = []
    for n in (32, 64, 128, 256):
        cc = gossip_congested_clique(n)
        rt = NCCRuntime(n, bench_config(SEED))
        ncc_rounds = gossip_ncc(rt)
        rows.append(
            [
                n,
                cc.rounds,
                ncc_rounds,
                math.ceil((n - 1) / rt.net.capacity),
                round(n / math.log2(n), 1),
            ]
        )
        assert cc.rounds == 1
        assert ncc_rounds == math.ceil((n - 1) / rt.net.capacity)
    # NCC gossip grows ~n/log n while CC stays at 1: the gap must widen
    # (8x n gives ≥ 3x rounds; exactly n/log n up to capacity rounding).
    assert rows[-1][2] >= rows[0][2] * 3
    report(
        format_table(
            ["n", "CC rounds", "NCC rounds", "⌈(n−1)/cap⌉", "n/log n"],
            rows,
            title="SEP-1  Gossip: Congested Clique (1 round) vs NCC (Ω(n/log n))",
        )
    )
    run_once(benchmark, lambda: gossip_ncc(NCCRuntime(128, bench_config(SEED))))


def test_broadcast_separation(benchmark, report):
    rows = []
    for n in (32, 128, 512):
        cc = broadcast_congested_clique(n)
        rt = NCCRuntime(n, bench_config(SEED))
        ncc_rounds = broadcast_ncc(rt)
        rows.append([n, cc.rounds, ncc_rounds, round(math.log2(n), 1)])
        assert cc.rounds == 1
        assert ncc_rounds <= 5 * math.log2(n)
    report(
        format_table(
            ["n", "CC rounds", "NCC rounds", "log n"],
            rows,
            title="SEP-1  Broadcast: 1 round vs Θ(log n) in the NCC",
        )
    )
    run_once(benchmark, lambda: None)


def test_per_round_bandwidth(benchmark, report):
    """Θ̃(n²) vs Θ̃(n) bits per round."""
    rows = []
    for n in (32, 128, 512):
        cc = gossip_congested_clique(n)
        cc_bits_per_round = cc.bits / cc.rounds
        rt = NCCRuntime(n, bench_config(SEED))
        gossip_ncc(rt)
        ncc_bits_per_round = rt.net.stats.bits / max(1, rt.net.stats.rounds)
        rows.append(
            [
                n,
                int(cc_bits_per_round),
                int(ncc_bits_per_round),
                round(cc_bits_per_round / max(1, ncc_bits_per_round), 1),
            ]
        )
    # quadratic vs quasi-linear: the ratio must grow roughly like n/log² n.
    assert rows[-1][3] > rows[0][3] * 3
    report(
        format_table(
            ["n", "CC bits/round", "NCC bits/round", "ratio"],
            rows,
            title="SEP-1  Per-round bandwidth: Θ̃(n²) vs Θ̃(n) bits",
        )
    )
    run_once(benchmark, lambda: None)
