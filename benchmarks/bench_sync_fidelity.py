"""Experiment SYNC-1 — fidelity of the `lightweight_sync` profile.

The benchmark sweeps run with `lightweight_sync`, which charges barrier and
token-wave rounds as idle rounds instead of materializing their messages.
This experiment certifies the substitution: for identical workloads, full
message-level synchronization and the lightweight profile must produce

* identical algorithm outputs (bit-for-bit),
* round counts within the token-wave approximation (±(d+1) rounds per
  routing run — measured, small single-digit percents),
* message counts differing exactly by the barrier/token traffic.
"""

import pytest

from repro import Enforcement, NCCConfig, NCCRuntime
from repro.algorithms import MISAlgorithm, build_broadcast_trees
from repro.analysis.reporting import format_table
from repro.baselines.sequential import is_maximal_independent_set
from repro.graphs import generators

from .conftest import run_once

SEED = 10


def run_profile(n, lightweight):
    g = generators.forest_union(n, 2, seed=SEED)
    cfg = NCCConfig(
        seed=SEED,
        enforcement=Enforcement.STRICT,
        extras={"lightweight_sync": lightweight},
    )
    rt = NCCRuntime(n, cfg)
    res = MISAlgorithm(rt, g).run()
    assert is_maximal_independent_set(g, res.members)
    return rt, res


def test_lightweight_profile_fidelity(benchmark, report):
    rows = []
    for n in (32, 64, 128):
        rt_full, res_full = run_profile(n, lightweight=False)
        rt_light, res_light = run_profile(n, lightweight=True)
        # identical outputs
        assert res_full.members == res_light.members
        drift = abs(res_full.rounds - res_light.rounds) / res_full.rounds
        rows.append(
            [
                n,
                res_full.rounds,
                res_light.rounds,
                f"{100 * drift:.1f}%",
                rt_full.net.stats.messages,
                rt_light.net.stats.messages,
            ]
        )
        assert drift < 0.25, "lightweight rounds drifted too far from full sync"
        # lightweight must carry strictly fewer messages (no barrier/token
        # traffic) while the full profile stays within the model (STRICT).
        assert rt_light.net.stats.messages < rt_full.net.stats.messages
    report(
        format_table(
            ["n", "full-sync rounds", "lightweight rounds", "drift", "full msgs", "light msgs"],
            rows,
            title="SYNC-1  lightweight_sync fidelity (same outputs; rounds within token-wave slack)",
        )
    )
    run_once(benchmark, lambda: run_profile(64, True))
