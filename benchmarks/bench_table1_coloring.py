"""Experiment T1-COL — Table 1 row 5 / Theorem 5.5:
O(a)-coloring in O((a + log n) log^{3/2} n) with palette 2(1+ε)â.

Besides the round sweep, the color-count table checks the *quality* claim:
colors used ≤ 2(1+ε)â = O(a), independent of ∆ (the star row pins that)."""

import pytest

from repro.registry import bench_config, get_algorithm
from repro.analysis.complexity import rank_models
from repro.analysis.reporting import format_table

from .conftest import run_once

# Row runners resolved through the algorithm registry.
run_coloring_row = get_algorithm("coloring").run_row

SEED = 1


def test_coloring_n_sweep(benchmark, report):
    rows = [run_coloring_row(n, a=2, seed=SEED) for n in (32, 64, 128, 256)]
    assert all(r["correct"] for r in rows)
    assert all(r["violations"] == 0 for r in rows)

    params = [{"n": r["n"], "a": r["a"]} for r in rows]
    rounds = [r["rounds"] for r in rows]
    fits = rank_models(params, rounds)
    by_name = {f.model: f for f in fits}
    assert by_name["(a + log n) log^1.5 n"].rmse <= by_name["n"].rmse

    report(
        format_table(
            ["n", "a", "repetitions", "rounds", "colors", "palette"],
            [
                [r["n"], r["a"], r["repetitions"], r["rounds"], r["colors_used"], r["palette"]]
                for r in rows
            ],
            title="T1-COL n-sweep  (paper bound: O((a + log n) log^{3/2} n), Theorem 5.5)",
        )
        + "\n  model fits (best first): "
        + "; ".join(f"{f.model} nrmse={f.rmse:.2f}" for f in fits[:3])
    )
    run_once(benchmark, lambda: run_coloring_row(64, a=2, seed=SEED))


def test_coloring_quality_independent_of_delta(benchmark, report):
    """Star: ∆ = n−1 but a = 1 — palette must stay O(1)."""
    from repro import NCCRuntime
    from repro.algorithms import ColoringAlgorithm
    from repro.baselines.sequential import is_proper_coloring
    from repro.graphs import generators

    rows = []
    for n in (32, 64, 128):
        g = generators.star(n)
        rt = NCCRuntime(n, bench_config(SEED))
        res = ColoringAlgorithm(rt, g).run()
        assert is_proper_coloring(g, res.colors)
        rows.append([n, n - 1, res.a_hat, res.palette_size, res.colors_used()])
        assert res.palette_size <= 6  # 2(1+ε)·â with â = 1
    report(
        format_table(
            ["n", "max degree", "â", "palette", "colors used"],
            rows,
            title="T1-COL stars: palette tracks a, not ∆",
        )
    )
    run_once(benchmark, lambda: None)


def test_coloring_arboricity_sweep(benchmark, report):
    rows = [run_coloring_row(96, a=a, seed=SEED) for a in (1, 2, 4)]
    assert all(r["correct"] for r in rows)
    # Palette grows linearly in â (the 2(1+ε)â formula).
    palettes = [r["palette"] for r in rows]
    assert palettes == sorted(palettes)
    report(
        format_table(
            ["a", "rounds", "colors", "palette"],
            [[r["a"], r["rounds"], r["colors_used"], r["palette"]] for r in rows],
            title="T1-COL arboricity sweep at n=96",
        )
    )
    run_once(benchmark, lambda: run_coloring_row(48, a=4, seed=SEED))
