"""Experiments P-AB, P-AGG, P-MTS, P-MC, P-MAGG — Theorems 2.2–2.6.

Round/congestion measurements for each communication primitive against its
theorem's bound:

* P-AB   — Aggregate-and-Broadcast is *exactly* 2d+2 rounds (Theorem 2.2's
  O(log n) with the constant visible);
* P-AGG  — Aggregation rounds track O(L/n + (ℓ₁+ℓ̂₂)/log n + log n) over a
  load sweep (Theorem 2.3);
* P-MTS  — tree congestion stays O(L/n + log n) (Theorem 2.4);
* P-MC   — Multicast rounds track O(C + ℓ̂/log n + log n) (Theorem 2.5);
* P-MAGG — Multi-Aggregation rounds track O(C + log n) (Theorem 2.6).
"""

import math
import random

import pytest

from repro import NCCRuntime
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.primitives import MIN, SUM, AggregationProblem

from .conftest import run_once

SEED = 3


def rt_for(n):
    return NCCRuntime(n, bench_config(SEED))


def test_aggregate_and_broadcast_rounds(benchmark, report):
    """P-AB: exactly 2⌊log n⌋ + 2 rounds at every size."""
    rows = []
    for n in (16, 64, 256, 1024):
        rt = rt_for(n)
        before = rt.net.round_index
        total = rt.aggregate_and_broadcast({u: 1 for u in range(n)}, SUM)
        rounds = rt.net.round_index - before
        d = rt.bf.d
        assert total == n
        assert rounds == 2 * d + 2
        rows.append([n, d, rounds, rt.net.stats.messages])
    report(
        format_table(
            ["n", "d", "rounds", "messages"],
            rows,
            title="P-AB  Aggregate-and-Broadcast (Theorem 2.2: O(log n); measured exactly 2d+2)",
        )
    )
    run_once(benchmark, lambda: rt_for(256).aggregate_and_broadcast({u: 1 for u in range(256)}, SUM))


def test_aggregation_load_sweep(benchmark, report):
    """P-AGG: rounds vs global load L at fixed n — linear in L/n after the
    log n floor."""
    n = 128
    rows = []
    rng = random.Random(7)
    for per_node in (1, 2, 4, 8, 16):
        rt = rt_for(n)
        memberships = {
            u: {g: 1 for g in rng.sample(range(n), per_node)} for u in range(n)
        }
        prob = AggregationProblem(
            memberships=memberships,
            targets={g: g for g in range(n)},
            fn=SUM,
        )
        out = rt.aggregation(prob)
        L = prob.global_load()
        bound_term = L / n + (prob.ell1() + prob.ell2()) / rt.log2n + rt.log2n
        rows.append([per_node, L, out.rounds, round(bound_term, 1), round(out.rounds / bound_term, 1)])
        # correctness: every group got its count
        assert all(v == per_node * n // n or v >= 1 for v in out.values.values())
    ratios = [r[4] for r in rows]
    # The rounds/bound ratio must stay within a constant band: that IS the
    # theorem's statement.
    assert max(ratios) <= 4 * min(ratios)
    report(
        format_table(
            ["packets/node", "L", "rounds", "L/n+(ℓ1+ℓ2)/log n+log n", "ratio"],
            rows,
            title="P-AGG  Aggregation load sweep at n=128 (Theorem 2.3)",
        )
    )
    run_once(benchmark, lambda: None)


def test_aggregation_n_sweep(benchmark, report):
    """P-AGG: constant per-node load, growing n — rounds must stay ~log n."""
    rows = []
    for n in (32, 128, 512):
        rt = rt_for(n)
        prob = AggregationProblem(
            memberships={u: {u % 8: u} for u in range(n)},
            targets={g: g for g in range(8)},
            fn=SUM,
        )
        out = rt.aggregation(prob)
        rows.append([n, out.rounds])
    assert rows[-1][1] < 4 * rows[0][1]  # 16x n, < 4x rounds
    report(
        format_table(["n", "rounds"], rows, title="P-AGG  n-sweep at constant load")
    )
    run_once(benchmark, lambda: None)


def test_multicast_setup_congestion(benchmark, report):
    """P-MTS: measured tree congestion vs the O(L/n + log n) bound."""
    rows = []
    rng = random.Random(11)
    for n, per_node in [(64, 1), (64, 4), (256, 2), (256, 8)]:
        rt = rt_for(n)
        memberships = {u: rng.sample(range(n // 4), per_node) for u in range(n)}
        trees = rt.multicast_setup(memberships)
        L = n * per_node
        bound = L / n + math.log2(n)
        c = trees.congestion()
        rows.append([n, per_node, L, c, round(bound, 1), round(c / bound, 2)])
        assert c <= 8 * bound
    report(
        format_table(
            ["n", "joins/node", "L", "congestion", "L/n + log n", "ratio"],
            rows,
            title="P-MTS  Multicast Tree Setup congestion (Theorem 2.4: O(L/n + log n))",
        )
    )
    run_once(benchmark, lambda: None)


def test_multicast_rounds(benchmark, report):
    """P-MC: multicast rounds vs O(C + ℓ̂/log n + log n)."""
    rows = []
    rng = random.Random(13)
    for n, groups, per_node in [(64, 8, 2), (128, 16, 4), (256, 8, 1)]:
        rt = rt_for(n)
        memberships = {u: rng.sample(range(groups), per_node) for u in range(n)}
        trees = rt.multicast_setup(memberships)
        out = rt.multicast(
            trees,
            {g: g for g in range(groups)},
            {g: g for g in range(groups)},
            ell_bound=per_node,
        )
        c = trees.congestion()
        bound = c + per_node / rt.log2n + rt.log2n
        rows.append([n, groups, c, out.rounds, round(bound, 1), round(out.rounds / bound, 1)])
    ratios = [r[5] for r in rows]
    assert max(ratios) <= 5 * min(ratios)
    report(
        format_table(
            ["n", "groups", "congestion C", "rounds", "C + ℓ/log n + log n", "ratio"],
            rows,
            title="P-MC  Multicast (Theorem 2.5: O(C + ℓ̂/log n + log n))",
        )
    )
    run_once(benchmark, lambda: None)


def test_multi_aggregation_rounds(benchmark, report):
    """P-MAGG: rounds vs O(C + log n) across sizes."""
    rows = []
    for n in (32, 128, 512):
        rt = rt_for(n)
        # ring neighbourhoods: group u = {u-1, u+1}
        memberships = {}
        for u in range(n):
            memberships.setdefault((u - 1) % n, []).append(u)
            memberships.setdefault((u + 1) % n, []).append(u)
        trees = rt.multicast_setup(memberships)
        out = rt.multi_aggregation(
            trees,
            {u: u for u in range(n)},
            {u: u for u in range(n)},
            MIN,
        )
        c = trees.congestion()
        bound = c + rt.log2n
        rows.append([n, c, out.rounds, round(out.rounds / bound, 1)])
        # each node receives the min over its two "neighbours"
        for v in range(n):
            assert out.values[v] == min((v - 1) % n, (v + 1) % n)
    ratios = [r[3] for r in rows]
    assert max(ratios) <= 4 * min(ratios)
    report(
        format_table(
            ["n", "congestion C", "rounds", "rounds/(C+log n)"],
            rows,
            title="P-MAGG  Multi-Aggregation (Theorem 2.6: O(C + log n))",
        )
    )
    run_once(benchmark, lambda: None)
