"""Experiments P-AB, P-AGG, P-MTS, P-MC, P-MAGG, P-COL — Theorems 2.2–2.6.

Round/congestion measurements for each communication primitive against its
theorem's bound:

* P-AB   — Aggregate-and-Broadcast is *exactly* 2d+2 rounds (Theorem 2.2's
  O(log n) with the constant visible);
* P-AGG  — Aggregation rounds track O(L/n + (ℓ₁+ℓ̂₂)/log n + log n) over a
  load sweep (Theorem 2.3);
* P-MTS  — tree congestion stays O(L/n + log n) (Theorem 2.4);
* P-MC   — Multicast rounds track O(C + ℓ̂/log n + log n) (Theorem 2.5);
* P-MAGG — Multi-Aggregation rounds track O(C + log n) (Theorem 2.6);
* P-COL  — before/after gate for the columnar-submission conversion: the
  per-message submission the primitives used before the conversion vs the
  ``BatchBuilder`` columnar form they use now, end-to-end through
  ``NCCNetwork.exchange`` on aggregation traffic at n = 1024;
* P-LAZY — the lazy-inbox whole-run gate: a full Aggregation Algorithm run
  at n = 1024 on the shipped pipeline (deferred builder + ``InboxBatch``
  delivery + column-reading consumers) must be >= 2x faster than the PR 2
  pipeline, with the PR 2 baseline frozen as a machine-independent multiple
  of a reference-engine probe (see the test's docstring);
* P-TYPED — the typed-payload-column gate and scale ladder: a full
  Aggregation run at n = 4096 with declared payload dtypes must beat the
  object-column pipeline while constructing zero ``Message`` objects *and*
  zero Python payload boxes, and the same comparison is recorded at
  n = 4096 / 16384 / 65536 in BENCH_engine.json;
* P-TELEM — the disabled-telemetry overhead gate: the tracer hooks wired
  through the engines must cost <= 3% of the P-TYPED whole-run wall time
  when no tracer is installed (hook-firing count x microbenchmarked
  disabled-guard cost, see the test's docstring).
"""

import math
import random
import time

from repro import Enforcement, NCCConfig, NCCNetwork, NCCRuntime
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.ncc.message import (
    BatchBuilder,
    Message,
    message_construction_count,
    payload_box_count,
    set_deferred_submission,
    set_typed_payloads,
)
from repro.primitives import MIN, SUM, AggregationProblem

from .conftest import emit_bench_json, run_once

SEED = 3


def rt_for(n):
    return NCCRuntime(n, bench_config(SEED))


def test_aggregate_and_broadcast_rounds(benchmark, report):
    """P-AB: exactly 2⌊log n⌋ + 2 rounds at every size."""
    rows = []
    for n in (16, 64, 256, 1024):
        rt = rt_for(n)
        before = rt.net.round_index
        total = rt.aggregate_and_broadcast({u: 1 for u in range(n)}, SUM)
        rounds = rt.net.round_index - before
        d = rt.bf.d
        assert total == n
        assert rounds == 2 * d + 2
        rows.append([n, d, rounds, rt.net.stats.messages])
    report(
        format_table(
            ["n", "d", "rounds", "messages"],
            rows,
            title="P-AB  Aggregate-and-Broadcast (Theorem 2.2: O(log n); measured exactly 2d+2)",
        )
    )
    run_once(benchmark, lambda: rt_for(256).aggregate_and_broadcast({u: 1 for u in range(256)}, SUM))


def test_aggregation_load_sweep(benchmark, report):
    """P-AGG: rounds vs global load L at fixed n — linear in L/n after the
    log n floor."""
    n = 128
    rows = []
    rng = random.Random(7)
    for per_node in (1, 2, 4, 8, 16):
        rt = rt_for(n)
        memberships = {
            u: {g: 1 for g in rng.sample(range(n), per_node)} for u in range(n)
        }
        prob = AggregationProblem(
            memberships=memberships,
            targets={g: g for g in range(n)},
            fn=SUM,
        )
        out = rt.aggregation(prob)
        L = prob.global_load()
        bound_term = L / n + (prob.ell1() + prob.ell2()) / rt.log2n + rt.log2n
        rows.append([per_node, L, out.rounds, round(bound_term, 1), round(out.rounds / bound_term, 1)])
        # correctness: every group got its count
        assert all(v == per_node * n // n or v >= 1 for v in out.values.values())
    ratios = [r[4] for r in rows]
    # The rounds/bound ratio must stay within a constant band: that IS the
    # theorem's statement.
    assert max(ratios) <= 4 * min(ratios)
    report(
        format_table(
            ["packets/node", "L", "rounds", "L/n+(ℓ1+ℓ2)/log n+log n", "ratio"],
            rows,
            title="P-AGG  Aggregation load sweep at n=128 (Theorem 2.3)",
        )
    )
    run_once(benchmark, lambda: None)


def test_aggregation_n_sweep(benchmark, report):
    """P-AGG: constant per-node load, growing n — rounds must stay ~log n."""
    rows = []
    for n in (32, 128, 512):
        rt = rt_for(n)
        prob = AggregationProblem(
            memberships={u: {u % 8: u} for u in range(n)},
            targets={g: g for g in range(8)},
            fn=SUM,
        )
        out = rt.aggregation(prob)
        rows.append([n, out.rounds])
    assert rows[-1][1] < 4 * rows[0][1]  # 16x n, < 4x rounds
    report(
        format_table(["n", "rounds"], rows, title="P-AGG  n-sweep at constant load")
    )
    run_once(benchmark, lambda: None)


def test_multicast_setup_congestion(benchmark, report):
    """P-MTS: measured tree congestion vs the O(L/n + log n) bound."""
    rows = []
    rng = random.Random(11)
    for n, per_node in [(64, 1), (64, 4), (256, 2), (256, 8)]:
        rt = rt_for(n)
        memberships = {u: rng.sample(range(n // 4), per_node) for u in range(n)}
        trees = rt.multicast_setup(memberships)
        L = n * per_node
        bound = L / n + math.log2(n)
        c = trees.congestion()
        rows.append([n, per_node, L, c, round(bound, 1), round(c / bound, 2)])
        assert c <= 8 * bound
    report(
        format_table(
            ["n", "joins/node", "L", "congestion", "L/n + log n", "ratio"],
            rows,
            title="P-MTS  Multicast Tree Setup congestion (Theorem 2.4: O(L/n + log n))",
        )
    )
    run_once(benchmark, lambda: None)


def test_multicast_rounds(benchmark, report):
    """P-MC: multicast rounds vs O(C + ℓ̂/log n + log n)."""
    rows = []
    rng = random.Random(13)
    for n, groups, per_node in [(64, 8, 2), (128, 16, 4), (256, 8, 1)]:
        rt = rt_for(n)
        memberships = {u: rng.sample(range(groups), per_node) for u in range(n)}
        trees = rt.multicast_setup(memberships)
        out = rt.multicast(
            trees,
            {g: g for g in range(groups)},
            {g: g for g in range(groups)},
            ell_bound=per_node,
        )
        c = trees.congestion()
        bound = c + per_node / rt.log2n + rt.log2n
        rows.append([n, groups, c, out.rounds, round(bound, 1), round(out.rounds / bound, 1)])
    ratios = [r[5] for r in rows]
    assert max(ratios) <= 5 * min(ratios)
    report(
        format_table(
            ["n", "groups", "congestion C", "rounds", "C + ℓ/log n + log n", "ratio"],
            rows,
            title="P-MC  Multicast (Theorem 2.5: O(C + ℓ̂/log n + log n))",
        )
    )
    run_once(benchmark, lambda: None)


COLUMNAR_TARGET = 1.5  # batched engine, plain vs columnar submission
CROSS_ENGINE_TARGET = 1.25  # reference+plain (the pre-conversion pipeline)


def _delivery_round(n: int):
    """One aggregation-delivery round at the model's full per-round budget:
    every level-d host forwards ``capacity`` group results ``("R", g, v)``
    to their targets (the postprocessing window of Theorem 2.3, which is
    the heaviest per-round shape an aggregation run produces).  Returned
    as ``(src, dst, payload)`` triples so both submission forms are built
    from identical traffic."""
    cap = NCCConfig().capacity(n)
    return [
        (u, (u + 17 * i + 1) % n, ("R", (u * cap + i) % (4 * n), i))
        for u in range(n)
        for i in range(cap)
    ]


def _plain_form(triples, kind):
    """The submission form every primitive used before the conversion."""
    return [Message(s, d, p, kind) for s, d, p in triples]


def _columnar_form(triples, kind):
    """The submission form the primitives produce now."""
    out = BatchBuilder(kind=kind)
    for s, d, p in triples:
        out.add(s, d, p)
    return out.batches()


def _time_exchange(engine, n, submission, rounds=5, repeats=5):
    """Best-of-repeats seconds per ``exchange`` call (the full network
    stack: normalization, engine enforcement/accounting, delivery)."""
    best = float("inf")
    for _ in range(repeats):
        net = NCCNetwork(
            n, NCCConfig(seed=0, enforcement=Enforcement.COUNT, engine=engine)
        )
        net.exchange(submission)  # warmup: first-touch allocations
        t0 = time.perf_counter()
        for _ in range(rounds):
            net.exchange(submission)
        best = min(best, (time.perf_counter() - t0) / rounds)
    return best


def test_columnar_submission_speedup(benchmark, report):
    """P-COL: the columnar conversion's before/after gate.

    Before this PR every butterfly-routed primitive submitted per-message
    ``Message`` lists; now they submit ``BatchBuilder`` columns.  On the
    aggregation-heavy delivery shape at n = 1024 the columnar form must be
    >= 1.5x faster end-to-end through ``exchange`` under the batched
    engine, and >= 1.25x against the full pre-conversion pipeline
    (reference engine + per-message submission).  Message construction is
    identical in both pipelines (the same objects are built exactly once
    either way) and is therefore built outside the timed region, mirroring
    bench_engine_fastpath.  Inboxes must be identical across all four
    engine x submission combinations — the speedup can never come from
    skipped work.
    """
    rows = []
    gate = {}
    for n in (256, 1024):
        triples = _delivery_round(n)
        plain = _plain_form(triples, "aggregation")
        columnar = _columnar_form(triples, "aggregation")

        observed = {}
        for engine in ("reference", "batched"):
            for label, sub in (("plain", plain), ("columnar", columnar)):
                net = NCCNetwork(
                    n,
                    NCCConfig(seed=0, enforcement=Enforcement.COUNT, engine=engine),
                )
                inbox = net.exchange(sub)
                observed[(engine, label)] = (
                    list(inbox.items()),
                    net.stats.comparable(),
                )
        baseline = observed[("reference", "plain")]
        assert all(o == baseline for o in observed.values()), (
            "submission forms diverged — parity violated"
        )

        # Shared CI runners jitter; on a threshold miss at the gated size,
        # re-measure once and keep the better ratios before failing the
        # build (a genuine regression fails both attempts).
        for attempt in range(2):
            t_ref_plain = _time_exchange("reference", n, plain)
            t_bat_plain = _time_exchange("batched", n, plain)
            t_bat_col = _time_exchange("batched", n, columnar)
            submission_speedup = t_bat_plain / t_bat_col
            pipeline_speedup = t_ref_plain / t_bat_col
            if n != 1024 or (
                submission_speedup >= COLUMNAR_TARGET
                and pipeline_speedup >= CROSS_ENGINE_TARGET
            ):
                break
        rows.append(
            [n, len(triples),
             round(t_ref_plain * 1e3, 2), round(t_bat_plain * 1e3, 2),
             round(t_bat_col * 1e3, 2),
             round(submission_speedup, 2), round(pipeline_speedup, 2)]
        )
        if n == 1024:
            gate = {
                "submission_speedup": submission_speedup,
                "pipeline_speedup": pipeline_speedup,
            }
            assert submission_speedup >= COLUMNAR_TARGET, (
                f"columnar submission {submission_speedup:.2f}x below "
                f"{COLUMNAR_TARGET}x target at n={n}"
            )
            assert pipeline_speedup >= CROSS_ENGINE_TARGET, (
                f"end-to-end pipeline {pipeline_speedup:.2f}x below "
                f"{CROSS_ENGINE_TARGET}x target at n={n}"
            )
    report(
        format_table(
            ["n", "msgs/round", "ref+plain ms", "bat+plain ms", "bat+col ms",
             "columnar speedup", "pipeline speedup"],
            rows,
            title=(
                "P-COL  Columnar submission end-to-end (acceptance: >= "
                f"{COLUMNAR_TARGET}x at n=1024; measured "
                f"{gate['submission_speedup']:.2f}x submission, "
                f"{gate['pipeline_speedup']:.2f}x vs pre-conversion pipeline)"
            ),
        )
    )
    emit_bench_json(
        "primitives_columnar",
        {
            "submission_speedup_n1024": round(gate["submission_speedup"], 3),
            "pipeline_speedup_n1024": round(gate["pipeline_speedup"], 3),
            "targets": {
                "submission": COLUMNAR_TARGET,
                "pipeline": CROSS_ENGINE_TARGET,
            },
            "columns": ["n", "msgs_per_round", "ref_plain_ms", "bat_plain_ms",
                        "bat_col_ms", "submission_speedup", "pipeline_speedup"],
            "rows": rows,
        },
    )
    triples = _delivery_round(1024)
    columnar = _columnar_form(triples, "aggregation")
    run_once(benchmark, lambda: _time_exchange("batched", 1024, columnar, repeats=1))


def test_aggregation_run_no_regression(benchmark, report):
    """P-COL-E2E: a full Aggregation Algorithm run (Theorem 2.3) at
    n = 1024 under both engines: identical outcomes, and the batched
    engine must not regress end-to-end wall time.  Informational — the
    router and message construction dominate whole-run wall time, so the
    engine gap here is structurally small; the 1.5x gate lives on the
    exchange pipeline above."""
    n = 1024
    rng = random.Random(SEED)
    memberships = {
        u: {g: 1 for g in rng.sample(range(512), 8)} for u in range(n)
    }
    times = {}
    outcomes = {}

    def measure(engine, repeats=2):
        cfg = NCCConfig(
            seed=0,
            enforcement=Enforcement.COUNT,
            engine=engine,
            extras={"lightweight_sync": True},
        )
        best = float("inf")
        for _ in range(repeats):
            rt = NCCRuntime(n, cfg)
            prob = AggregationProblem(
                memberships=memberships,
                targets={g: g % n for g in range(512)},
                fn=SUM,
            )
            t0 = time.perf_counter()
            out = rt.aggregation(prob)
            best = min(best, time.perf_counter() - t0)
            outcomes[engine] = (out.values, out.rounds, rt.net.stats.comparable())
        return best

    for engine in ("reference", "batched"):
        times[engine] = measure(engine)
    assert outcomes["reference"] == outcomes["batched"]
    speedup = times["reference"] / times["batched"]
    if speedup < 0.85:  # shared-runner jitter: re-measure once before failing
        for engine in ("reference", "batched"):
            times[engine] = min(times[engine], measure(engine))
        speedup = times["reference"] / times["batched"]
    assert speedup >= 0.85, f"batched engine regressed a full run: {speedup:.2f}x"
    report(
        format_table(
            ["engine", "wall s"],
            [[e, round(t, 3)] for e, t in times.items()],
            title=(
                "P-COL-E2E  Full aggregation run at n=1024 "
                f"(batched/reference = {speedup:.2f}x, identical outcomes)"
            ),
        )
    )
    run_once(benchmark, lambda: None)


# The PR 2 whole-run baseline, frozen as a machine-independent ratio: the
# full aggregation run below, executed on the PR 2 tree (commit 2dccfd0,
# batched engine — the fastest pipeline PR 2 shipped), took 40.3-41.5x the
# wall time of `_lazy_gate_probe()` measured in the same process (3
# trials, best-of-5 each; recorded in BENCH_engine.json).  The probe is a
# reference-engine per-message exchange whose code path predates PR 2 and
# is not touched by the lazy-inbox work, so `run / probe` is stable across
# machine speeds and the baseline survives CI-runner changes.  40.0 is the
# conservative floor of the observed band.
PR2_RUN_PER_PROBE = 40.0
LAZY_WHOLE_RUN_TARGET = 2.0


def _lazy_gate_memberships(n):
    rng = random.Random(SEED)
    return {u: {g: 1 for g in rng.sample(range(512), 8)} for u in range(n)}


def _lazy_gate_probe(n=1024, rounds=3, repeats=5):
    """Machine-speed probe: reference-engine exchange on the P-COL
    delivery workload (prebuilt per-message submission)."""
    plain = _plain_form(_delivery_round(n), "probe")
    return _time_exchange("reference", n, plain, rounds=rounds, repeats=repeats)


def _lazy_gate_run(n=1024, *, deferred, repeats=4):
    """Best-of-repeats wall seconds for one full aggregation run at n,
    plus its observables and the number of Message objects constructed."""
    memberships = _lazy_gate_memberships(n)
    previous = set_deferred_submission(deferred)
    try:
        best = float("inf")
        outcome = constructed = None
        for _ in range(repeats):
            cfg = NCCConfig(
                seed=0,
                enforcement=Enforcement.COUNT,
                engine="batched",
                extras={"lightweight_sync": True},
            )
            rt = NCCRuntime(n, cfg)
            prob = AggregationProblem(
                memberships=memberships,
                targets={g: g % n for g in range(512)},
                fn=SUM,
            )
            before = message_construction_count()
            t0 = time.perf_counter()
            out = rt.aggregation(prob)
            best = min(best, time.perf_counter() - t0)
            constructed = message_construction_count() - before
            outcome = (out.values, out.rounds, rt.net.stats.comparable())
    finally:
        set_deferred_submission(previous)
    return best, outcome, constructed


def test_lazy_inbox_whole_run_speedup(benchmark, report):
    """P-LAZY: the lazy-inbox whole-run gate (>= 2x vs the PR 2 baseline).

    A full Aggregation Algorithm run at n = 1024 under the shipped
    pipeline — deferred ``BatchBuilder`` submission, ``InboxBatch``
    delivery, column-reading routers/primitives — must be at least
    ``LAZY_WHOLE_RUN_TARGET`` times faster than the same run under the
    PR 2 pipeline.  The PR 2 side cannot be re-executed here (its router
    and engine code no longer exist in this tree), so its wall time is
    frozen as ``PR2_RUN_PER_PROBE`` multiples of an in-process
    reference-engine probe (see the constant's comment): the gate passes
    iff ``PR2_RUN_PER_PROBE * probe / run >= 2``.

    Two hard side conditions keep the speedup honest:

    * the run must construct **zero** ``Message`` objects (the clean
      lazy-round guarantee, asserted via the construction counter);
    * the run's outcome and statistics must be identical to the eager
      (PR 2 submission form) pipeline executed in-process.
    """
    # Shared CI runners jitter; re-measure once before failing the build.
    for attempt in range(2):
        probe = _lazy_gate_probe()
        t_lazy, out_lazy, constructed = _lazy_gate_run(deferred=True)
        speedup = PR2_RUN_PER_PROBE * probe / t_lazy
        if speedup >= LAZY_WHOLE_RUN_TARGET:
            break
    assert constructed == 0, (
        f"clean lazy run constructed {constructed} Message objects"
    )
    t_eager, out_eager, _ = _lazy_gate_run(deferred=False, repeats=2)
    assert out_lazy == out_eager, "submission representations diverged"
    report(
        format_table(
            ["pipeline", "wall s", "run/probe"],
            [
                ["PR 2 (frozen baseline)", round(PR2_RUN_PER_PROBE * probe, 3),
                 PR2_RUN_PER_PROBE],
                ["eager submission (in-process)", round(t_eager, 3),
                 round(t_eager / probe, 1)],
                ["lazy inboxes (shipped)", round(t_lazy, 3),
                 round(t_lazy / probe, 1)],
            ],
            title=(
                "P-LAZY  Whole aggregation run at n=1024 (acceptance: >= "
                f"{LAZY_WHOLE_RUN_TARGET}x vs the PR 2 baseline; measured "
                f"{speedup:.2f}x, zero Message objects constructed)"
            ),
        )
    )
    emit_bench_json(
        "primitives_lazy_inbox",
        {
            "whole_run_speedup_vs_pr2": round(speedup, 3),
            "target": LAZY_WHOLE_RUN_TARGET,
            "lazy_run_s": round(t_lazy, 4),
            "eager_run_s": round(t_eager, 4),
            "probe_s": round(probe, 5),
            "lazy_run_per_probe": round(t_lazy / probe, 2),
            "pr2_run_per_probe_frozen": PR2_RUN_PER_PROBE,
            "messages_constructed_clean_run": constructed,
        },
    )
    assert speedup >= LAZY_WHOLE_RUN_TARGET, (
        f"lazy whole-run speedup {speedup:.2f}x below "
        f"{LAZY_WHOLE_RUN_TARGET}x vs the PR 2 baseline "
        f"(run {t_lazy:.3f}s, probe {probe:.4f}s)"
    )
    run_once(benchmark, lambda: None)


# Typed payload columns vs the object-column pipeline, whole-run.  The
# observed band on this workload is 1.6-1.9x at n = 4096 (and it widens
# with n — the ladder below records 2.2-2.5x at 16384); 1.3 is the
# conservative floor the gate enforces.
TYPED_WHOLE_RUN_TARGET = 1.3
TYPED_LADDER = (4096, 16384, 65536)


def _typed_gate_problem(n):
    """Aggregation load that scales with n: max(512, n/2) groups, eight
    memberships per node, targets striped across the hosts."""
    rng = random.Random(SEED)
    groups = max(512, n // 2)
    return AggregationProblem(
        memberships={
            u: {g: 1 for g in rng.sample(range(groups), 8)} for u in range(n)
        },
        targets={g: g % n for g in range(groups)},
        fn=SUM,
    )


def _typed_gate_run(n, *, typed, repeats=3):
    """Best-of-repeats wall seconds for one full aggregation run at n with
    typed payload columns on or off, plus the observables and the Message /
    payload-box construction counts for the best run's pipeline."""
    prob = _typed_gate_problem(n)
    previous = set_typed_payloads(typed)
    try:
        best = float("inf")
        outcome = constructed = boxed = None
        for _ in range(repeats):
            cfg = NCCConfig(
                seed=0,
                enforcement=Enforcement.COUNT,
                engine="batched",
                extras={"lightweight_sync": True},
            )
            rt = NCCRuntime(n, cfg)
            before_msgs = message_construction_count()
            before_boxes = payload_box_count()
            t0 = time.perf_counter()
            out = rt.aggregation(prob)
            best = min(best, time.perf_counter() - t0)
            constructed = message_construction_count() - before_msgs
            boxed = payload_box_count() - before_boxes
            outcome = (out.values, out.rounds, rt.net.stats.comparable())
    finally:
        set_typed_payloads(previous)
    return best, outcome, constructed, boxed


def test_typed_columns_whole_run_speedup(benchmark, report):
    """P-TYPED: the typed-payload-column whole-run gate at n = 4096.

    A full Aggregation run whose wire traffic declares its payload dtype
    (the router's (tag, lvl, g, val) struct, submitted and delivered as
    numpy columns end-to-end) must be at least ``TYPED_WHOLE_RUN_TARGET``
    times faster than the identical run on the object-column pipeline.

    Two hard side conditions keep the speedup honest:

    * the typed run must construct **zero** ``Message`` objects and
      **zero** Python payload boxes — a clean typed round never leaves
      numpy (the per-group results are folded from columns, so even the
      final answers never pass through per-packet objects);
    * its outcome and statistics must be identical to the object run's.
    """
    n = 4096
    # Shared CI runners jitter; re-measure once before failing the build.
    for attempt in range(2):
        t_typed, out_typed, constructed, boxed = _typed_gate_run(n, typed=True)
        t_object, out_object, _, _ = _typed_gate_run(n, typed=False, repeats=2)
        speedup = t_object / t_typed
        if speedup >= TYPED_WHOLE_RUN_TARGET:
            break
    assert constructed == 0, (
        f"clean typed run constructed {constructed} Message objects"
    )
    assert boxed == 0, f"clean typed run boxed {boxed} payloads"
    assert out_typed == out_object, "payload representations diverged"
    report(
        format_table(
            ["pipeline", "wall s", "Messages", "payload boxes"],
            [
                ["object columns", round(t_object, 3), 0, "per packet"],
                ["typed columns", round(t_typed, 3), constructed, boxed],
            ],
            title=(
                f"P-TYPED  Whole aggregation run at n={n} (acceptance: >= "
                f"{TYPED_WHOLE_RUN_TARGET}x vs object columns; measured "
                f"{speedup:.2f}x, identical outcomes)"
            ),
        )
    )
    emit_bench_json(
        "typed_columns",
        {
            "whole_run_speedup": round(speedup, 3),
            "target": TYPED_WHOLE_RUN_TARGET,
            "typed_run_s": round(t_typed, 4),
            "object_run_s": round(t_object, 4),
            "n": n,
            "messages_constructed_typed_run": constructed,
            "payload_boxes_typed_run": boxed,
        },
    )
    assert speedup >= TYPED_WHOLE_RUN_TARGET, (
        f"typed whole-run speedup {speedup:.2f}x below "
        f"{TYPED_WHOLE_RUN_TARGET}x (typed {t_typed:.3f}s, "
        f"object {t_object:.3f}s)"
    )
    run_once(benchmark, lambda: None)


def test_typed_columns_scale_ladder(benchmark, report):
    """P-TYPED ladder: typed vs object whole runs at n = 4096/16384/65536.

    Informational (the acceptance gate lives at n = 4096 above): records
    how the typed-column advantage scales, and asserts the structural
    invariant — zero Messages, zero payload boxes, identical outcomes —
    at every rung.  Single measurement per rung; the top one is a ~100 s
    pair of runs, so repetition is deliberately left to the CI trajectory
    across builds.
    """
    rows = []
    ladder = {}
    for n in TYPED_LADDER:
        t_typed, out_typed, constructed, boxed = _typed_gate_run(
            n, typed=True, repeats=1
        )
        t_object, out_object, _, _ = _typed_gate_run(n, typed=False, repeats=1)
        assert constructed == 0 and boxed == 0
        assert out_typed == out_object
        rounds = out_typed[1]
        rows.append([
            n, rounds, round(t_typed, 2), round(t_object, 2),
            round(t_object / t_typed, 2),
        ])
        ladder[str(n)] = {
            "typed_run_s": round(t_typed, 4),
            "object_run_s": round(t_object, 4),
            "speedup": round(t_object / t_typed, 3),
            "rounds": rounds,
        }
    report(
        format_table(
            ["n", "rounds", "typed s", "object s", "speedup"],
            rows,
            title=(
                "P-TYPED  Scale ladder (typed vs object whole aggregation "
                "runs; zero Messages / zero payload boxes at every size)"
            ),
        )
    )
    emit_bench_json("typed_columns_ladder", ladder)
    run_once(benchmark, lambda: None)


TELEMETRY_OVERHEAD_BUDGET = 0.03


def _disabled_guard_cost(iters=2_000_000):
    """Per-firing cost of the disabled tracer hook: one module-attribute
    load plus an ``is None`` test (loop overhead included, which only
    overstates the cost — the gate stays conservative)."""
    from repro.telemetry import tracer as _tracer

    assert _tracer.CURRENT is None
    t0 = time.perf_counter()
    for _ in range(iters):
        if _tracer.CURRENT is not None:  # pragma: no cover - tracing is off
            raise AssertionError("tracer installed during guard benchmark")
    return (time.perf_counter() - t0) / iters


def test_telemetry_disabled_overhead(benchmark, report):
    """P-TELEM: disabled tracer hooks cost <= 3% of a typed whole run.

    The hooks are compiled into the engines, so "before instrumentation"
    cannot be timed directly; the gate is arithmetic instead.  A traced
    run of the P-TYPED workload counts how often the instrumented sites
    fire (every span is a begin/end or stamp pair, every event one call),
    a microbenchmark prices the disabled-path guard (one module-attribute
    load + ``is None`` test), and the product must stay under
    ``TELEMETRY_OVERHEAD_BUDGET`` of the untraced wall time.  The traced
    wall time rides along in BENCH_engine.json for context (it is *not*
    the gate: tracing on pays for real record-keeping by design).
    """
    from repro.telemetry import tracing

    n = 4096
    t_off, _, _, _ = _typed_gate_run(n, typed=True, repeats=2)

    prob = _typed_gate_problem(n)
    previous = set_typed_payloads(True)
    try:
        cfg = NCCConfig(
            seed=0,
            enforcement=Enforcement.COUNT,
            engine="batched",
            extras={"lightweight_sync": True},
        )
        rt = NCCRuntime(n, cfg)
        with tracing(label="overhead-gate") as tr:
            t0 = time.perf_counter()
            rt.aggregation(prob)
            t_on = time.perf_counter() - t0
    finally:
        set_typed_payloads(previous)

    spans = sum(1 for kind, _, _ in tr.structure() if kind == "span")
    events = len(tr.records) - spans
    firings = 2 * spans + events
    guard_s = _disabled_guard_cost()
    overhead_frac = (firings * guard_s) / t_off

    report(
        format_table(
            ["quantity", "value"],
            [
                ["untraced wall s", round(t_off, 4)],
                ["traced wall s", round(t_on, 4)],
                ["hook firings", firings],
                ["guard cost ns", round(guard_s * 1e9, 2)],
                ["disabled overhead", f"{overhead_frac:.5%}"],
            ],
            title=(
                f"P-TELEM  Disabled-telemetry overhead at n={n} "
                f"(acceptance: <= {TELEMETRY_OVERHEAD_BUDGET:.0%} of the "
                "untraced run)"
            ),
        )
    )
    emit_bench_json(
        "telemetry_overhead",
        {
            "budget": TELEMETRY_OVERHEAD_BUDGET,
            "disabled_overhead_frac": round(overhead_frac, 6),
            "guard_cost_ns": round(guard_s * 1e9, 3),
            "hook_firings": firings,
            "n": n,
            "traced_run_s": round(t_on, 4),
            "untraced_run_s": round(t_off, 4),
        },
    )
    assert overhead_frac <= TELEMETRY_OVERHEAD_BUDGET, (
        f"disabled telemetry hooks cost {overhead_frac:.3%} of the typed "
        f"run at n={n} ({firings} firings x {guard_s * 1e9:.1f} ns), over "
        f"the {TELEMETRY_OVERHEAD_BUDGET:.0%} budget"
    )
    run_once(benchmark, lambda: None)


def test_multi_aggregation_rounds(benchmark, report):
    """P-MAGG: rounds vs O(C + log n) across sizes."""
    rows = []
    for n in (32, 128, 512):
        rt = rt_for(n)
        # ring neighbourhoods: group u = {u-1, u+1}
        memberships = {}
        for u in range(n):
            memberships.setdefault((u - 1) % n, []).append(u)
            memberships.setdefault((u + 1) % n, []).append(u)
        trees = rt.multicast_setup(memberships)
        out = rt.multi_aggregation(
            trees,
            {u: u for u in range(n)},
            {u: u for u in range(n)},
            MIN,
        )
        c = trees.congestion()
        bound = c + rt.log2n
        rows.append([n, c, out.rounds, round(out.rounds / bound, 1)])
        # each node receives the min over its two "neighbours"
        for v in range(n):
            assert out.values[v] == min((v - 1) % n, (v + 1) % n)
    ratios = [r[3] for r in rows]
    assert max(ratios) <= 4 * min(ratios)
    report(
        format_table(
            ["n", "congestion C", "rounds", "rounds/(C+log n)"],
            rows,
            title="P-MAGG  Multi-Aggregation (Theorem 2.6: O(C + log n))",
        )
    )
    run_once(benchmark, lambda: None)
