"""Experiment E-SHARD — sharded vs batched engine at simulation scale.

The sharded engine is certified byte-identical to the single-process
batched engine (``tests/test_engine_parity.py``, ``tests/test_sharded.py``),
so — like E-ENG — this benchmark measures the one thing allowed to
differ: wall time, here at the n = 10^5 and n = 10^6 scales the engine
exists for.  The workload is the clean typed round the distributed path
is built around: every node sends ``MSGS_PER_NODE`` int64 messages along
shifted permutations, submitted as one typed column build per round
(fresh columns every round, the primitives' shape), so a round is one
block split + shuffle + merge on the sharded engine and one argsort on
the batched engine.

The ``sharded_ladder`` section is persisted to ``BENCH_engine.json``
*unconditionally* — the n = 10^6 completion row is an acceptance
artifact — and only the perf gate is skipped on small hosts: below
``MIN_CORES`` cores the worker pool cannot beat the single-process
argsort (the shuffle is pure IPC overhead when parent and workers share
one core), so no speedup assertion is meaningful there.  Stats parity is
asserted on every measured run; full inbox equality is asserted at the
smaller n (it is an O(messages) re-walk that would dominate the 10^6
timing budget without adding coverage — the byte-identity tests own that
invariant at every scale class).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import Enforcement, NCCConfig, NCCNetwork
from repro.analysis.reporting import format_table
from repro.ncc.message import BatchBuilder
from repro.ncc.sharded import workers as shard_workers

from .conftest import emit_bench_json, run_once

MSGS_PER_NODE = 4
MIN_CORES = 4

#: (n, timed rounds, repeats) — fewer samples at 10^6 where one round is
#: itself seconds of work and the simulation is deterministic anyway.
LADDER = ((100_000, 3, 2), (1_000_000, 2, 1))


def _typed_round(n: int) -> BatchBuilder:
    out = BatchBuilder(kind="bench", dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), MSGS_PER_NODE)
    shift = np.tile(np.arange(1, MSGS_PER_NODE + 1, dtype=np.int64), n)
    out.add_arrays(src, (src + shift) % n, src * 10 + shift)
    return out


def _fresh_net(engine: str, n: int) -> NCCNetwork:
    return NCCNetwork(
        n, NCCConfig(seed=0, enforcement=Enforcement.COUNT, engine=engine)
    )


def _time_engine(engine: str, n: int, rounds: int, repeats: int):
    """Best-of-repeats seconds per end-to-end typed ``exchange`` round
    (including the column build — that is what a primitive pays), plus
    the final stats snapshot and the engine instance."""
    best = float("inf")
    net = None
    for _ in range(repeats):
        net = _fresh_net(engine, n)
        net.exchange(_typed_round(n))  # warmup: pool spawn + allocations
        t0 = time.perf_counter()
        for _ in range(rounds):
            net.exchange(_typed_round(n))
        best = min(best, (time.perf_counter() - t0) / rounds)
    return best, net


def test_sharded_ladder(benchmark, report):
    """E-SHARD: rounds/sec ladder at n = 10^5 and 10^6, batched vs
    sharded.  The 10^6 sharded row completing at all is an acceptance
    criterion; the speedup gate only applies on hosts with enough cores
    for the pool to be more than IPC overhead."""
    cores = os.cpu_count() or 1
    rows = []
    json_rows = []
    speedup_at_1m = None
    for n, rounds, repeats in LADDER:
        t_bat, net_bat = _time_engine("batched", n, rounds, repeats)
        t_sh, net_sh = _time_engine("sharded", n, rounds, repeats)
        assert (
            net_bat.stats.comparable() == net_sh.stats.comparable()
        ), f"engines diverged at n={n} — parity violated"
        if n == LADDER[0][0]:
            # Full inbox byte-equality once, at the cheap scale.
            assert net_bat.exchange(_typed_round(n)) == net_sh.exchange(
                _typed_round(n)
            ), f"inboxes diverged at n={n}"
        eng = net_sh.engine
        speedup = t_bat / t_sh
        if n == 1_000_000:
            speedup_at_1m = speedup
        rows.append(
            [n, n * MSGS_PER_NODE, eng.shards,
             round(1.0 / t_bat, 3), round(1.0 / t_sh, 3), round(speedup, 2),
             "yes" if not eng._disabled else "degraded"]
        )
        json_rows.append(
            [n, n * MSGS_PER_NODE, eng.shards,
             round(1.0 / t_bat, 4), round(1.0 / t_sh, 4), round(speedup, 3)]
        )
    shard_workers.close_pool()  # don't leak the 10^6-sized segment
    emit_bench_json(
        "sharded_ladder",
        {
            "cores": cores,
            "min_cores_for_gate": MIN_CORES,
            "gated": cores >= MIN_CORES,
            "msgs_per_node": MSGS_PER_NODE,
            "speedup_n1e6": round(speedup_at_1m, 3),
            "columns": [
                "n", "msgs_per_round", "shards",
                "batched_rounds_per_s", "sharded_rounds_per_s", "speedup",
            ],
            "rows": json_rows,
        },
    )
    report(
        format_table(
            ["n", "msgs/round", "shards",
             "batched rounds/s", "sharded rounds/s", "speedup", "completed"],
            rows,
            title=(
                f"E-SHARD  Sharded engine ladder on {cores} core(s) "
                "(acceptance: the n=10^6 sharded row completes; speedup "
                f"gated at >= {MIN_CORES} cores)"
            ),
        )
    )
    run_once(benchmark, lambda: None)
    if cores < MIN_CORES:
        pytest.skip(
            f"{cores} core(s): the shard pool shares the parent's core, so "
            "a speedup gate would only measure IPC overhead "
            "(ladder emitted above)"
        )
    # Enough cores for the pool to do real work: the distributed delivery
    # must at least roughly keep pace with single-process at 10^6 (the
    # lenient floor tolerates shared CI boxes; the ladder records the
    # actual trajectory).
    assert speedup_at_1m >= 0.8, (
        f"sharded delivery fell to {speedup_at_1m:.2f}x batched at n=10^6 "
        f"on {cores} cores"
    )
