"""Experiment T1-MIS — Table 1 row 3 / Theorem 5.3:
MIS in O((a + log n) log n).

n-sweep at fixed a (growth must be polylog) and a-sweep at fixed n (growth
must be ≲ linear in a with a log-factor constant).
"""

import pytest

from repro.registry import get_algorithm
from repro.analysis.complexity import rank_models
from repro.analysis.reporting import format_table

from .conftest import run_once

# Row runners resolved through the algorithm registry.
run_mis_row = get_algorithm("mis").run_row

SEED = 1


def test_mis_n_sweep(benchmark, report):
    rows = [run_mis_row(n, a=2, seed=SEED) for n in (32, 64, 128, 256)]
    assert all(r["correct"] for r in rows)
    assert all(r["violations"] == 0 for r in rows)

    params = [{"n": r["n"], "a": r["a"]} for r in rows]
    rounds = [r["rounds"] for r in rows]
    fits = rank_models(params, rounds)
    by_name = {f.model: f for f in fits}
    assert by_name["(a + log n) log n"].rmse <= by_name["n"].rmse
    assert by_name["(a + log n) log n"].rmse <= by_name["n / log n"].rmse

    report(
        format_table(
            ["n", "m", "a", "phases", "rounds", "MIS size", "messages"],
            [
                [r["n"], r["m"], r["a"], r["phases"], r["rounds"], r["mis_size"], r["messages"]]
                for r in rows
            ],
            title="T1-MIS n-sweep  (paper bound: O((a + log n) log n), Theorem 5.3)",
        )
        + "\n  model fits (best first): "
        + "; ".join(f"{f.model} nrmse={f.rmse:.2f}" for f in fits[:3])
    )
    run_once(benchmark, lambda: run_mis_row(64, a=2, seed=SEED))


def test_mis_arboricity_sweep(benchmark, report):
    rows = [run_mis_row(96, a=a, seed=SEED) for a in (1, 2, 4, 8)]
    assert all(r["correct"] for r in rows)
    # a-term inside the bound: 8x arboricity must cost well below 8x rounds.
    assert rows[-1]["rounds"] < 6 * rows[0]["rounds"]
    report(
        format_table(
            ["a", "rounds", "phases", "MIS size"],
            [[r["a"], r["rounds"], r["phases"], r["mis_size"]] for r in rows],
            title="T1-MIS arboricity sweep at n=96",
        )
    )
    run_once(benchmark, lambda: run_mis_row(48, a=4, seed=SEED))
