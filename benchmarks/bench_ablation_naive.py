"""Experiment NV-1 — ablation: naive direct-communication algorithms vs the
paper's multicast-tree algorithms on high-degree graphs.

The naive baselines are *correct* (they batch to respect capacity) but pay
Θ(⌈∆/log n⌉) per phase, so on stars and preferential-attachment graphs
their rounds blow up with the maximum degree while the paper's algorithms
track a + log n.  This is the quantitative version of the paper's
motivation for Sections 4–5.
"""

import pytest

from repro import NCCRuntime
from repro.algorithms import MISAlgorithm, BFSAlgorithm, build_broadcast_trees
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.baselines.naive import naive_bfs, naive_mis
from repro.baselines.sequential import bfs_tree, is_maximal_independent_set
from repro.graphs import generators

from .conftest import run_once

SEED = 7


def test_naive_vs_tree_bfs_on_stars(benchmark, report):
    rows = []
    for n in (64, 128, 256):
        g = generators.star(n)

        rt_naive = NCCRuntime(n, bench_config(SEED))
        res_naive = naive_bfs(rt_naive, g, 0)
        dist_naive, _ = res_naive.output
        expected, _ = bfs_tree(g, 0)
        assert dist_naive == expected

        rt_smart = NCCRuntime(n, bench_config(SEED))
        res_smart = BFSAlgorithm(rt_smart, g).run(0)
        assert res_smart.dist == expected

        rows.append([n, n - 1, res_naive.rounds, res_smart.rounds])
    report(
        format_table(
            ["n", "∆", "naive BFS rounds", "NCC BFS rounds (incl. setup)"],
            rows,
            title="NV-1  BFS on stars: naive direct sends vs broadcast trees",
        )
        + "\n  note: the tree algorithm amortizes its setup over any number"
        + "\n  of later queries; the naive cost repeats per execution."
    )
    run_once(benchmark, lambda: None)


def test_naive_vs_tree_mis_on_pa_graphs(benchmark, report):
    rows = []
    for n in (64, 128):
        g = generators.preferential_attachment(n, 2, seed=SEED)

        rt_naive = NCCRuntime(n, bench_config(SEED))
        res_naive = naive_mis(rt_naive, g)
        assert is_maximal_independent_set(g, res_naive.output)

        rt_smart = NCCRuntime(n, bench_config(SEED))
        res_smart = MISAlgorithm(rt_smart, g).run()
        assert is_maximal_independent_set(g, res_smart.members)

        rows.append([n, g.max_degree, res_naive.rounds, res_smart.rounds])
    report(
        format_table(
            ["n", "∆", "naive MIS rounds", "NCC MIS rounds (incl. setup)"],
            rows,
            title="NV-1  MIS on preferential-attachment graphs",
        )
    )
    run_once(benchmark, lambda: None)


def test_amortization_crossover(benchmark, report):
    """Broadcast trees pay once, then every Corollary-1 exchange is
    O(log n): after a handful of operations the paper's approach wins even
    where a single naive exchange would be cheaper."""
    n = 128
    g = generators.star(n)

    rt = NCCRuntime(n, bench_config(SEED))
    bt = build_broadcast_trees(rt, g)
    setup = rt.net.round_index
    from repro.primitives import MIN
    from repro.algorithms.broadcast_trees import neighborhood_multi_aggregate

    per_exchange = []
    for _ in range(3):
        before = rt.net.round_index
        neighborhood_multi_aggregate(rt, bt, {0: 1}, MIN)
        per_exchange.append(rt.net.round_index - before)

    rt2 = NCCRuntime(n, bench_config(SEED))
    from repro.baselines.naive import _batched_neighbor_exchange

    before = rt2.net.round_index
    _batched_neighbor_exchange(rt2, g, lambda u: 1, [0], kind="naive")
    naive_per_exchange = rt2.net.round_index - before

    report(
        format_table(
            ["setup (once)", "tree exchange", "naive exchange", "crossover after"],
            [
                [
                    setup,
                    per_exchange[-1],
                    naive_per_exchange,
                    (
                        "never (tree slower/eq)"
                        if per_exchange[-1] >= naive_per_exchange
                        else f"{setup // max(1, naive_per_exchange - per_exchange[-1]) + 1} exchanges"
                    ),
                ]
            ],
            title=f"NV-1  Amortization on a star (n={n})",
        )
    )
    run_once(benchmark, lambda: None)
