"""Benchmark suite: one module per experiment id (see DESIGN.md §4)."""
