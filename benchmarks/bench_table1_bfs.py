"""Experiment T1-BFS — Table 1 row 2 / Theorem 5.2:
BFS tree in O((a + D + log n) log n).

Two sweeps probe the two variables of the bound:

* grids (planar, a ≤ 3) of growing side: D = 2(√n − 1) dominates, so
  rounds must track D·log n;
* bounded-arboricity forest unions at fixed n with a ∈ {1..8}: D stays
  small, rounds must grow only mildly in a.
"""

import pytest

from repro.registry import get_algorithm
from repro.analysis.complexity import rank_models
from repro.analysis.reporting import format_table

from .conftest import run_once

# Row runners resolved through the algorithm registry.
run_bfs_row = get_algorithm("bfs").run_row

SEED = 1


def test_bfs_grid_diameter_sweep(benchmark, report):
    rows = [run_bfs_row(n, family="grid", seed=SEED) for n in (16, 36, 64, 144, 256)]
    assert all(r["correct"] for r in rows)
    assert all(r["violations"] == 0 for r in rows)

    params = [{"n": r["n"], "a": r["a"], "D": r["D"]} for r in rows]
    rounds = [r["rounds"] for r in rows]
    fits = rank_models(params, rounds)
    by_name = {f.model: f for f in fits}
    # The paper's model must beat diameter-free alternatives.
    assert by_name["(a + D + log n) log n"].rmse <= by_name["log^2 n"].rmse
    assert by_name["(a + D + log n) log n"].rmse <= by_name["n"].rmse

    report(
        format_table(
            ["n", "D", "a", "phases", "rounds", "messages"],
            [[r["n"], r["D"], r["a"], r["phases"], r["rounds"], r["messages"]] for r in rows],
            title="T1-BFS grids  (paper bound: O((a + D + log n) log n), Theorem 5.2)",
        )
        + "\n  model fits (best first): "
        + "; ".join(f"{f.model} nrmse={f.rmse:.2f}" for f in fits[:3])
    )
    run_once(benchmark, lambda: run_bfs_row(64, family="grid", seed=SEED))


def test_bfs_arboricity_sweep(benchmark, report):
    rows = [run_bfs_row(96, a=a, seed=SEED) for a in (1, 2, 4, 8)]
    assert all(r["correct"] for r in rows)
    # Forest unions have tiny diameter; rounds should grow sublinearly in a
    # (the a-term rides inside one log n factor).
    assert rows[-1]["rounds"] < 6 * rows[0]["rounds"]
    report(
        format_table(
            ["a", "n", "D", "rounds", "messages"],
            [[r["a"], r["n"], r["D"], r["rounds"], r["messages"]] for r in rows],
            title="T1-BFS arboricity sweep at n=96",
        )
    )
    run_once(benchmark, lambda: run_bfs_row(64, a=4, seed=SEED))
