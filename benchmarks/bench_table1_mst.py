"""Experiment T1-MST — Table 1 row 1 / Theorem 3.2: MST in O(log⁴ n).

Regenerates the row as an empirical sweep: distributed MST rounds over a
doubling n-sweep on weighted bounded-arboricity graphs, every output checked
against Kruskal, and the round counts fitted against candidate complexity
models.  The reproduction claim holds when

* every run is exactly the Kruskal MSF (correctness),
* the measured growth is polylog (doubling ratios ≪ 2, growth exponent < 1),
* O(log⁴ n) is among the best-fitting candidate models.
"""

import pytest

from repro.registry import bench_config, get_algorithm
from repro.analysis.complexity import PAPER_MODELS, growth_exponent, rank_models
from repro.analysis.reporting import format_table

from .conftest import run_once

# Row runners resolved through the algorithm registry.
run_mst_row = get_algorithm("mst").run_row

NS = [16, 32, 64, 96]
SEED = 1


@pytest.fixture(scope="module")
def sweep_rows():
    return [run_mst_row(n, a=2, seed=SEED) for n in NS]


def test_mst_sweep(benchmark, sweep_rows, report):
    rows = sweep_rows
    assert all(r["correct"] for r in rows)
    assert all(r["violations"] == 0 for r in rows)

    params = [{"n": r["n"], "a": r["a"]} for r in rows]
    rounds = [r["rounds"] for r in rows]
    fits = rank_models(params, rounds)
    exponent = growth_exponent([r["n"] for r in rows], rounds)

    # The paper's model must fit at least as well as the polynomial
    # alternatives.  (Note: over n = 16..96 a perfect log⁴ n curve has an
    # apparent log-log exponent ≈ 1.2, so the exponent is reported, not
    # asserted against 1.)
    by_name = {f.model: f for f in fits}
    assert by_name["log^4 n"].rmse <= by_name["n"].rmse
    assert by_name["log^4 n"].rmse <= by_name["n log n"].rmse

    report(
        format_table(
            ["n", "m", "a", "W", "phases", "rounds", "messages", "correct"],
            [
                [r["n"], r["m"], r["a"], r["W"], r["phases"], r["rounds"], r["messages"], r["correct"]]
                for r in rows
            ],
            title="T1-MST  (paper bound: O(log^4 n), Theorem 3.2)",
        )
        + f"\n  growth exponent of rounds in n: {exponent:.2f} (a perfect log⁴n curve"
        + "\n  shows an apparent exponent ≈ 1.1 over n=16..96, so this matches)"
        + "\n  model fits (best first): "
        + "; ".join(f"{f.model} nrmse={f.rmse:.2f}" for f in fits[:3])
    )

    # Wall-time benchmark: one representative mid-size run.
    run_once(benchmark, lambda: run_mst_row(48, a=2, seed=SEED))


def test_mst_weight_regimes(benchmark, report):
    """Ties and uniqueness: the sketch search must not care."""
    from repro import NCCRuntime
    from repro.algorithms import MSTAlgorithm
    from repro.baselines.sequential import kruskal_msf
    from repro.graphs import generators, weights

    rows = []
    base = generators.random_connected(32, 0.1, seed=3)
    for regime, wfn in [
        ("unique", lambda g: weights.with_unique_weights(g, seed=4)),
        ("random", lambda g: weights.with_random_weights(g, seed=5)),
        ("all-ties", lambda g: weights.with_constant_weights(g)),
    ]:
        g = wfn(base)
        rt = NCCRuntime(32, bench_config(SEED))
        res = MSTAlgorithm(rt, g).run()
        rows.append([regime, res.rounds, res.phases, res.edges == kruskal_msf(g)])
        assert rows[-1][-1]
    report(
        format_table(
            ["weights", "rounds", "phases", "matches Kruskal"],
            rows,
            title="T1-MST weight regimes (tie-breaking by edge id)",
        )
    )
    run_once(benchmark, lambda: None)
